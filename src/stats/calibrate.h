#ifndef HPR_STATS_CALIBRATE_H
#define HPR_STATS_CALIBRATE_H

/// \file calibrate.h
/// Monte-Carlo calibration of distribution-distance thresholds.
///
/// The behavior test (paper §3.2) accepts a history iff the L1 distance
/// between the empirical window-count distribution and B(m, p̂) is below a
/// threshold ε chosen for a target confidence (95% by default).  Deriving
/// the exact distribution of the distance is intractable, so — exactly as
/// the paper does — ε is estimated empirically: generate many sets of k
/// iid samples from B(m, p̂), measure their distances to B(m, p̂), and take
/// the confidence-quantile of those distances.
///
/// Calibration cost dominates screening, so the Calibrator memoizes the
/// full sorted null-distance sample per key (k-bucket, m, p̂-bucket).
/// Storing the whole sample instead of a single quantile lets callers ask
/// for any confidence level against one cached simulation — multi-testing
/// uses this for its family-wise (Bonferroni) correction.
///
/// Three mechanisms make the cold path production-grade:
///
///  * **Chunk-parallel Monte-Carlo.**  The replication loop is split into
///    fixed chunks of kChunkReplications; chunk c draws from an Rng seeded
///    with splitmix64(key_seed + c).  Seeds depend only on the key and the
///    chunk index — never on which thread runs the chunk — so 1, 2, or N
///    worker threads produce the bit-identical sorted null sample.
///  * **Single-flight deduplication.**  Threads that miss the same cold
///    key join one in-flight computation instead of each paying for a
///    full Monte-Carlo run (the classic check-then-act race this fixes
///    previously made N concurrent misses cost N runs).
///  * **Warm start.**  precalibrate() fans a whole key grid across the
///    worker pool up front and composes with save_cache()/load_cache(),
///    so deployments can ship a precomputed cache and never calibrate on
///    the request path.
///
/// Two quantizations keep the key space small; both err on the
/// conservative side (a slightly *larger* ε, hence fewer false alarms):
///  * p̂ is rounded to a 1/p_grid grid;
///  * the window count k is capped at windows_cap and rounded *down* onto
///    a geometric grid (ratio windows_grid_ratio).  The null distance
///    shrinks as k grows, so evaluating at a smaller k over-estimates ε.
/// This is what makes repeated screening of growing histories O(1)
/// amortized — the enabler of the O(n) multi-test timing of §5.5 / Fig. 9.

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "stats/binomial.h"
#include "stats/distance.h"
#include "stats/rng.h"
#include "stats/thread_pool.h"

namespace hpr::stats {

/// Tuning knobs for threshold calibration.
struct CalibrationConfig {
    double confidence = 0.95;          ///< default quantile of the null distances
    std::size_t replications = 1000;   ///< Monte-Carlo sample sets per key
    DistanceKind kind = DistanceKind::kL1;
    std::uint32_t p_grid = 256;        ///< p̂ is quantized to multiples of 1/p_grid
    std::uint64_t seed = 0x5ca1ab1eULL;  ///< base seed; each key derives its own stream

    /// Window counts above this cap reuse the cap's null sample.
    std::size_t windows_cap = 2048;

    /// Geometric grid ratio for window-count bucketing (k is rounded DOWN
    /// to the nearest grid point, conservatively inflating ε).  Set to 1.0
    /// for exact per-k calibration.
    double windows_grid_ratio = 1.15;

    /// Worker threads for Monte-Carlo computation and precalibrate().
    /// 0 = one per hardware thread.  The thread count NEVER affects the
    /// computed samples (see the chunk-seeding scheme above), only speed.
    std::size_t threads = 0;
};

/// Point-in-time cache behavior of a Calibrator (see Calibrator::stats()).
/// Lets callers assert cache behavior directly instead of parsing
/// exporter text; the obs registry mirrors the same quantities as
/// process-wide aggregates across all calibrator instances.
struct CalibratorStats {
    std::size_t hits = 0;    ///< lookups answered from the memo cache
    std::size_t misses = 0;  ///< cold lookups that ran Monte-Carlo (flight leaders)
    std::size_t single_flight_joins = 0;  ///< lookups that waited on an in-flight run
    std::size_t in_flight = 0;      ///< keys being computed right now
    std::size_t cache_entries = 0;  ///< distinct keys memoized
};

/// Memoizing Monte-Carlo calibrator. Thread-safe; concurrent misses of
/// the same key share one computation (single-flight).
class Calibrator {
public:
    /// Replications per seeding chunk.  Part of the sampling scheme: the
    /// null sample for a key is a pure function of (seed, replications,
    /// kind, p_grid, kChunkReplications) — it is recorded in the cache
    /// file header so persisted samples can never silently mismatch.
    static constexpr std::size_t kChunkReplications = 32;

    explicit Calibrator(CalibrationConfig config = {});
    ~Calibrator();

    /// Threshold ε at the calibrator's default confidence.
    ///
    /// \param windows  number of window samples k (must be >= 1)
    /// \param m        window size (transactions per window)
    /// \param p_hat    estimated trust value in [0, 1]
    /// \throws std::invalid_argument on out-of-range arguments.
    [[nodiscard]] double threshold(std::size_t windows, std::uint32_t m, double p_hat);

    /// Threshold ε at an explicit confidence in (0, 1).  Uses the same
    /// cached null sample as any other confidence for the key.
    [[nodiscard]] double threshold(std::size_t windows, std::uint32_t m, double p_hat,
                                   double confidence);

    /// The full sorted null-distance sample for a key (useful for plotting
    /// Fig. 8-style curves and for tests).
    [[nodiscard]] const std::vector<double>& null_distances(std::size_t windows,
                                                            std::uint32_t m,
                                                            double p_hat);

    /// Warm the cache for the cross product windows × window_sizes ×
    /// p_hats, fanning cold keys out across the worker pool.  Arguments
    /// are validated like threshold()'s; duplicate grid points collapse
    /// onto their shared cache key.  Composes with save_cache(): calibrate
    /// once offline, persist, and serve with a cold-start-free calibrator.
    /// \returns the number of keys that were actually computed (cold).
    std::size_t precalibrate(const std::vector<std::size_t>& windows,
                             const std::vector<std::uint32_t>& window_sizes,
                             const std::vector<double>& p_hats);

    [[nodiscard]] const CalibrationConfig& config() const noexcept { return config_; }

    /// The bucketed window count actually used for a requested k.
    [[nodiscard]] std::size_t effective_windows(std::size_t windows) const;

    /// Resolved worker-thread count (config().threads, or the hardware
    /// concurrency when that is 0).
    [[nodiscard]] std::size_t threads() const noexcept;

    /// Number of distinct keys calibrated so far.
    [[nodiscard]] std::size_t cache_size() const;

    /// Number of Monte-Carlo computations actually executed (cache misses
    /// that became the single flight).  A concurrency probe: N threads
    /// racing one cold key must bump this exactly once.
    [[nodiscard]] std::size_t compute_count() const noexcept;

    /// Snapshot of this instance's cache behavior: hit/miss/join counts,
    /// keys currently in flight, and the memo size.  hits + misses +
    /// single_flight_joins equals the number of completed lookups.
    [[nodiscard]] CalibratorStats stats() const;

    /// Drop all memoized null samples.
    void clear_cache();

    /// Persist the memoized null samples so a later process can skip the
    /// Monte-Carlo warm-up (useful for deployments screening at startup).
    /// \throws std::runtime_error on I/O failure.
    void save_cache(const std::string& path) const;

    /// Merge null samples persisted by save_cache() into this cache.
    /// The file's calibration parameters (distance kind, replications,
    /// p-grid, seed, chunking) must match this calibrator's, otherwise the
    /// stored samples would answer a different question; every key must
    /// lie on this calibrator's quantization grids.  Corrupt or
    /// hand-edited entries are rejected with a line-numbered error.
    /// \throws std::runtime_error on I/O/parse failure, config mismatch,
    ///         or an invalid/off-grid/duplicate key.
    void load_cache(const std::string& path);

private:
    struct Key {
        std::uint64_t windows;
        std::uint32_t m;
        std::uint32_t p_bucket;
        auto operator<=>(const Key&) const = default;
    };

    [[nodiscard]] Key make_key(std::size_t windows, std::uint32_t m, double p_hat) const;
    [[nodiscard]] std::vector<double> compute_null(const Key& key) const;
    [[nodiscard]] const std::vector<double>& null_for(const Key& key);
    [[nodiscard]] std::string header_line() const;
    [[nodiscard]] ThreadPool& pool() const;

    CalibrationConfig config_;
    /// Read-mostly: threshold hits take the shared side; misses,
    /// warm-up and persistence take it exclusively.
    mutable std::shared_mutex mutex_;
    std::map<Key, std::vector<double>> cache_;

    /// Keys being computed right now; followers wait on the future while
    /// the flight leader runs the Monte-Carlo loop outside the lock.
    std::map<Key, std::shared_future<const std::vector<double>*>> inflight_;

    mutable std::atomic<std::size_t> compute_count_{0};
    mutable std::atomic<std::size_t> hit_count_{0};
    mutable std::atomic<std::size_t> join_count_{0};
    mutable std::once_flag pool_once_;
    mutable std::unique_ptr<ThreadPool> pool_;
};

/// Empirical quantile (linear interpolation between order statistics) of an
/// unsorted sample. \throws std::invalid_argument if values is empty.
[[nodiscard]] double empirical_quantile(std::vector<double> values, double q);

/// Quantile of an already-sorted sample (no copy).
[[nodiscard]] double sorted_quantile(const std::vector<double>& sorted, double q);

}  // namespace hpr::stats

#endif  // HPR_STATS_CALIBRATE_H
