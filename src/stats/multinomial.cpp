#include "stats/multinomial.h"

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "stats/binomial.h"

namespace hpr::stats {

Multinomial::Multinomial(std::uint32_t n, std::vector<double> probabilities)
    : n_(n), p_(std::move(probabilities)) {
    if (p_.empty()) {
        throw std::invalid_argument("Multinomial: need at least one category");
    }
    double total = 0.0;
    for (double v : p_) {
        if (v < 0.0) {
            throw std::invalid_argument("Multinomial: probabilities must be >= 0");
        }
        total += v;
    }
    if (std::fabs(total - 1.0) > 1e-9) {
        throw std::invalid_argument("Multinomial: probabilities must sum to 1");
    }
    for (double& v : p_) v /= total;
}

double Multinomial::log_pmf(const std::vector<std::uint32_t>& counts) const {
    if (counts.size() != p_.size()) {
        throw std::invalid_argument("Multinomial::log_pmf: category count mismatch");
    }
    const std::uint64_t sum = std::accumulate(counts.begin(), counts.end(), 0ULL);
    if (sum != n_) return -std::numeric_limits<double>::infinity();
    double logp = log_gamma(static_cast<double>(n_) + 1.0);
    for (std::size_t j = 0; j < counts.size(); ++j) {
        if (counts[j] > 0 && p_[j] == 0.0) {
            return -std::numeric_limits<double>::infinity();
        }
        logp -= log_gamma(static_cast<double>(counts[j]) + 1.0);
        if (counts[j] > 0) {
            logp += static_cast<double>(counts[j]) * std::log(p_[j]);
        }
    }
    return logp;
}

double Multinomial::pmf(const std::vector<std::uint32_t>& counts) const {
    return std::exp(log_pmf(counts));
}

Binomial Multinomial::marginal(std::size_t j) const {
    if (j >= p_.size()) {
        throw std::invalid_argument("Multinomial::marginal: category out of range");
    }
    return Binomial{n_, p_[j]};
}

std::vector<std::uint32_t> Multinomial::sample(Rng& rng) const {
    std::vector<std::uint32_t> counts(p_.size(), 0);
    std::uint32_t remaining = n_;
    double prob_left = 1.0;
    for (std::size_t j = 0; j + 1 < p_.size() && remaining > 0; ++j) {
        const double cond = prob_left > 0.0 ? std::min(1.0, p_[j] / prob_left) : 0.0;
        const Binomial marginal_given_rest{remaining, cond};
        const std::uint32_t draw = marginal_given_rest.sample(rng);
        counts[j] = draw;
        remaining -= draw;
        prob_left -= p_[j];
    }
    counts.back() += remaining;
    return counts;
}

}  // namespace hpr::stats
