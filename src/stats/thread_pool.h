#ifndef HPR_STATS_THREAD_POOL_H
#define HPR_STATS_THREAD_POOL_H

/// \file thread_pool.h
/// A small shared worker pool for data-parallel loops.
///
/// The Monte-Carlo calibrator is the library's dominant cold-path cost;
/// it parallelizes both the replication loop of one key and the key grid
/// of a warm-start across this pool.  The design is deliberately minimal:
///
///  * parallel_for(count, body) runs body(0..count-1) with dynamic
///    (atomic-claim) scheduling and blocks until every index finished;
///  * the CALLING thread always participates, so a parallel_for issued
///    from inside a pool worker (nested parallelism: precalibrate fans
///    keys across the pool, each key fans its replication chunks) can
///    never deadlock — if no worker is free the caller just executes the
///    whole loop itself;
///  * multiple parallel_for calls may be in flight concurrently; workers
///    drain jobs in FIFO order.
///
/// Determinism note: scheduling decides only WHICH thread runs an index,
/// never what the index computes — callers that want bit-identical
/// results across pool sizes must (and in this library do) derive all
/// randomness from the index, not from the executing thread.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hpr::stats {

/// Fixed-size worker pool with a help-the-caller parallel_for.
class ThreadPool {
public:
    /// Spawn `workers` threads.  Zero workers is valid: parallel_for then
    /// simply runs inline on the caller (the natural "1 thread" mode).
    explicit ThreadPool(std::size_t workers);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Joins all workers; outstanding jobs are finished first.
    ~ThreadPool();

    /// Number of pool worker threads (excluding participating callers).
    [[nodiscard]] std::size_t workers() const noexcept { return threads_.size(); }

    /// Execute body(i) for every i in [0, count) and wait for completion.
    /// Indices are claimed dynamically; the calling thread participates.
    /// If any invocation throws, remaining unclaimed indices are
    /// abandoned and the first exception is rethrown on the caller.
    void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

private:
    struct Job {
        Job(std::size_t job_count, const std::function<void(std::size_t)>* job_body)
            : count(job_count), body(job_body) {}
        const std::size_t count;
        const std::function<void(std::size_t)>* body;
        std::atomic<std::size_t> next{0};     ///< next unclaimed index
        std::size_t running = 0;              ///< claims in flight (guarded by pool mutex)
        std::exception_ptr error;             ///< first failure (guarded by pool mutex)
    };

    /// Claim and run indices of `job` until none are left.
    void drain(const std::shared_ptr<Job>& job);
    void worker_loop();

    std::mutex mutex_;
    std::condition_variable work_cv_;  ///< workers: a job arrived / shutdown
    std::condition_variable done_cv_;  ///< callers: a job may have completed
    std::deque<std::shared_ptr<Job>> jobs_;
    bool stop_ = false;
    std::vector<std::thread> threads_;
};

}  // namespace hpr::stats

#endif  // HPR_STATS_THREAD_POOL_H
