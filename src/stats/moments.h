#ifndef HPR_STATS_MOMENTS_H
#define HPR_STATS_MOMENTS_H

/// \file moments.h
/// Streaming summary statistics (Welford's algorithm) and normal-theory
/// confidence intervals, used by the experiment drivers to aggregate
/// per-trial results into the series the paper's figures plot.

#include <cstddef>
#include <cstdint>

namespace hpr::stats {

/// Numerically stable running mean/variance accumulator.
class RunningMoments {
public:
    void add(double x) noexcept {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        if (count_ == 1) {
            min_ = x;
            max_ = x;
        } else {
            if (x < min_) min_ = x;
            if (x > max_) max_ = x;
        }
    }

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }

    /// Unbiased sample variance; 0 when fewer than two samples.
    [[nodiscard]] double variance() const noexcept {
        return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
    }

    [[nodiscard]] double stddev() const noexcept;

    /// Standard error of the mean; 0 when empty.
    [[nodiscard]] double std_error() const noexcept;

    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }

    /// Half-width of the normal-approximation confidence interval around
    /// the mean (z = 1.96 for 95%).
    [[nodiscard]] double ci_half_width(double z = 1.96) const noexcept;

    void merge(const RunningMoments& other) noexcept;

private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

}  // namespace hpr::stats

#endif  // HPR_STATS_MOMENTS_H
