#ifndef HPR_STATS_REFERENCE_CACHE_H
#define HPR_STATS_REFERENCE_CACHE_H

/// \file reference_cache.h
/// Shared read-mostly cache of Binomial reference models.
///
/// Every stage of every behavior test compares an empirical window-count
/// distribution against B(m, p̂) (paper §3.2).  Constructing that reference
/// costs O(m) lgamma/exp evaluations — cheap once, ruinous when the serving
/// path rebuilds it for every suffix of every assessment.  Since p̂ is
/// always the rational good_total / (k·m), the distinct reference models a
/// deployment touches form a small, heavily re-hit set: cache them.
///
/// Two properties make the cache safe to put on the verdict path:
///
///  * **Exact keying.**  Keys are the window size m plus the rational p̂
///    reduced to lowest terms — NOT a quantized bucket.  IEEE-754 division
///    is correctly rounded, so (good/g) / (total/g) and good / total are
///    the same double whenever the integers convert to double exactly
///    (they are below 2^53 in any real workload; callers with larger
///    totals must construct fresh models).  A cached model is therefore
///    bit-identical to a freshly constructed one — verdicts, distances and
///    margins cannot drift by even one ulp.
///  * **Single-flight construction.**  Concurrent misses of the same key
///    join one in-flight construction (the stats::Calibrator discipline)
///    instead of each building the table.
///
/// Values are handed out as shared_ptr<const Binomial>, so an entry evicted
/// while a reader still holds it simply outlives its cache slot.  The cache
/// is bounded: inserting beyond `capacity` evicts the least-recently-used
/// entry.  Hits take a shared lock and bump a per-entry atomic recency
/// stamp; only misses and evictions take the exclusive lock.

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "stats/binomial.h"

namespace hpr::stats {

/// Point-in-time behavior snapshot of a ReferenceModelCache (the obs
/// registry mirrors the same quantities as process-wide aggregates).
struct ReferenceModelCacheStats {
    std::size_t hits = 0;    ///< lookups answered from the cache
    std::size_t misses = 0;  ///< cold lookups that built a model (flight leaders)
    std::size_t single_flight_joins = 0;  ///< lookups that waited on an in-flight build
    std::size_t evictions = 0;      ///< entries dropped by the LRU bound
    std::size_t in_flight = 0;      ///< keys being constructed right now
    std::size_t entries = 0;        ///< models currently resident
};

/// Thread-safe LRU cache of immutable Binomial reference models keyed by
/// (m, p̂ as an exact reduced rational).
class ReferenceModelCache {
public:
    /// Default resident-model bound.  A key is (m, reduced p̂); a serving
    /// deployment with one window size touches roughly one key per
    /// distinct (good, total) pair its suffix ladders produce, so a few
    /// thousand entries cover steady state with room to spare.
    static constexpr std::size_t kDefaultCapacity = 4096;

    /// \param capacity  maximum resident entries (minimum 1).
    explicit ReferenceModelCache(std::size_t capacity = kDefaultCapacity);

    /// The reference model B(m, good/total); total == 0 yields B(m, 0).
    ///
    /// Bit-identity with `Binomial{m, double(good)/double(total)}` is
    /// guaranteed while good and total are exactly representable as
    /// doubles (< 2^53).
    /// \throws std::invalid_argument if good > total.
    [[nodiscard]] std::shared_ptr<const Binomial> reference(std::uint32_t m,
                                                            std::uint64_t good,
                                                            std::uint64_t total);

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

    /// Snapshot of hit/miss/join/eviction counts and current occupancy.
    [[nodiscard]] ReferenceModelCacheStats stats() const;

    /// Drop every resident model (outstanding shared_ptrs stay valid).
    void clear();

    /// The process-wide cache used by assessors that are not handed a
    /// dedicated instance (core::BehaviorTestConfig::reference_cache).
    /// Leaked on purpose so it outlives every static-destruction-order
    /// hazard, like obs::default_registry().
    [[nodiscard]] static ReferenceModelCache& process_wide();

private:
    /// p̂ in lowest terms: num/den = good/total with gcd divided out
    /// (0/1 when total == 0).  Exactness of the key is what makes cached
    /// and fresh models bit-identical.
    struct Key {
        std::uint32_t m;
        std::uint64_t num;
        std::uint64_t den;
        auto operator<=>(const Key&) const = default;
    };

    struct Entry {
        Entry(std::shared_ptr<const Binomial> m, std::uint64_t stamp)
            : model(std::move(m)), last_used(stamp) {}
        std::shared_ptr<const Binomial> model;
        std::atomic<std::uint64_t> last_used;  ///< recency stamp (global tick)
    };

    /// splitmix64-style mix of (m, num, den).  The hot path is one hash
    /// plus one bucket probe — measurably cheaper than the pointer-chasing
    /// compares of an ordered map at steady-state occupancy.
    struct KeyHash {
        [[nodiscard]] std::size_t operator()(const Key& key) const noexcept {
            std::uint64_t h = key.num + 0x9e3779b97f4a7c15ULL * (key.den + key.m);
            h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
            h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
            return static_cast<std::size_t>(h ^ (h >> 31));
        }
    };

    [[nodiscard]] static Key make_key(std::uint32_t m, std::uint64_t good,
                                      std::uint64_t total);
    [[nodiscard]] std::uint64_t next_stamp() noexcept {
        return tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    /// Evict least-recently-used entries down to capacity.  Requires the
    /// exclusive lock.
    void evict_excess_locked();

    std::size_t capacity_;
    mutable std::shared_mutex mutex_;
    std::unordered_map<Key, Entry, KeyHash> cache_;

    /// Keys being constructed right now; followers wait on the future
    /// while the flight leader builds the table outside the lock.
    std::unordered_map<Key, std::shared_future<std::shared_ptr<const Binomial>>, KeyHash>
        inflight_;

    std::atomic<std::uint64_t> tick_{0};
    std::atomic<std::size_t> hits_{0};
    std::atomic<std::size_t> misses_{0};
    std::atomic<std::size_t> joins_{0};
    std::atomic<std::size_t> evictions_{0};
};

}  // namespace hpr::stats

#endif  // HPR_STATS_REFERENCE_CACHE_H
