#ifndef HPR_STATS_NORMAL_H
#define HPR_STATS_NORMAL_H

/// \file normal.h
/// Standard normal cdf and quantile, for normal-approximation tests
/// (the runs test of core/runs_test.h) and confidence machinery.

namespace hpr::stats {

/// Φ(x): standard normal cdf.
[[nodiscard]] double normal_cdf(double x) noexcept;

/// Φ⁻¹(p) for p in (0, 1): Acklam's rational approximation refined by one
/// Halley step; absolute error below 1e-9 across the domain.
/// \throws std::invalid_argument outside (0, 1).
[[nodiscard]] double normal_quantile(double p);

}  // namespace hpr::stats

#endif  // HPR_STATS_NORMAL_H
