#include "stats/calibrate.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace hpr::stats {

namespace {

/// Process-wide calibration metrics (aggregated over every Calibrator
/// instance).  Resolved once; recording afterwards is lock-free.
struct CalibrationMetrics {
    obs::Counter& hits;
    obs::Counter& misses;
    obs::Counter& joins;
    obs::Gauge& cache_entries;
    obs::Histogram& compute_seconds;
};

CalibrationMetrics& calibration_metrics() {
    auto& registry = obs::default_registry();
    static CalibrationMetrics metrics{
        registry.counter("hpr_calibration_cache_hits_total",
                         "Threshold lookups answered from the memo cache"),
        registry.counter("hpr_calibration_cache_misses_total",
                         "Cold lookups that ran a Monte-Carlo null computation"),
        registry.counter("hpr_calibration_single_flight_joins_total",
                         "Lookups that joined an in-flight computation"),
        registry.gauge("hpr_calibration_cache_entries",
                       "Memoized null samples across live calibrators"),
        registry.histogram("hpr_calibration_compute_seconds",
                           "Wall time of one per-key Monte-Carlo null computation"),
    };
    return metrics;
}

}  // namespace

double sorted_quantile(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) {
        throw std::invalid_argument("sorted_quantile: empty sample");
    }
    if (!(q >= 0.0 && q <= 1.0)) {
        throw std::invalid_argument("sorted_quantile: q must be in [0, 1]");
    }
    if (sorted.size() == 1) return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double empirical_quantile(std::vector<double> values, double q) {
    if (values.empty()) {
        throw std::invalid_argument("empirical_quantile: empty sample");
    }
    std::sort(values.begin(), values.end());
    return sorted_quantile(values, q);
}

Calibrator::Calibrator(CalibrationConfig config) : config_(config) {
    if (!(config_.confidence > 0.0 && config_.confidence < 1.0)) {
        throw std::invalid_argument("Calibrator: confidence must be in (0, 1)");
    }
    if (config_.replications == 0) {
        throw std::invalid_argument("Calibrator: need at least one replication");
    }
    if (config_.p_grid == 0) {
        throw std::invalid_argument("Calibrator: p_grid must be positive");
    }
    if (config_.windows_cap == 0) {
        throw std::invalid_argument("Calibrator: windows_cap must be positive");
    }
    if (!(config_.windows_grid_ratio >= 1.0)) {
        throw std::invalid_argument("Calibrator: windows_grid_ratio must be >= 1");
    }
}

Calibrator::~Calibrator() {
    // This instance's memoized entries disappear with it; keep the
    // process-wide gauge an honest aggregate over live calibrators.
    calibration_metrics().cache_entries.sub(static_cast<std::int64_t>(cache_.size()));
}

std::size_t Calibrator::threads() const noexcept {
    if (config_.threads != 0) return config_.threads;
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

ThreadPool& Calibrator::pool() const {
    // Lazily started so purely warm-cache calibrators never spawn threads.
    std::call_once(pool_once_, [this] {
        pool_ = std::make_unique<ThreadPool>(threads() - 1);
    });
    return *pool_;
}

std::size_t Calibrator::effective_windows(std::size_t windows) const {
    std::size_t k = std::min(windows, config_.windows_cap);
    if (config_.windows_grid_ratio > 1.0) {
        // Walk the deterministic integer grid 1, 2, 3, ... with ~ratio
        // spacing and keep the largest point <= k (conservative: smaller
        // k means a larger calibrated threshold).
        std::size_t point = 1;
        std::size_t best = 1;
        while (point <= k) {
            best = point;
            const auto next = static_cast<std::size_t>(
                std::floor(static_cast<double>(point) * config_.windows_grid_ratio));
            point = std::max(point + 1, next);
        }
        k = best;
    }
    return k;
}

Calibrator::Key Calibrator::make_key(std::size_t windows, std::uint32_t m,
                                     double p_hat) const {
    if (windows == 0) {
        throw std::invalid_argument("Calibrator: need at least one window");
    }
    if (m == 0) {
        throw std::invalid_argument("Calibrator: window size must be positive");
    }
    if (!(p_hat >= 0.0 && p_hat <= 1.0)) {
        throw std::invalid_argument("Calibrator: p_hat must be in [0, 1]");
    }
    auto bucket = static_cast<std::uint32_t>(
        std::lround(p_hat * static_cast<double>(config_.p_grid)));
    // Never round a non-degenerate p̂ onto the degenerate endpoints: the
    // null distance at p = 1 (or 0) is exactly zero, which would condemn
    // any history containing a single opposite outcome to fail forever.
    if (bucket == 0 && p_hat > 0.0) bucket = 1;
    if (bucket == config_.p_grid && p_hat < 1.0) bucket = config_.p_grid - 1;
    return Key{effective_windows(windows), m, bucket};
}

std::vector<double> Calibrator::compute_null(const Key& key) const {
    compute_count_.fetch_add(1, std::memory_order_relaxed);
    calibration_metrics().misses.increment();
    obs::ScopedTimer span{calibration_metrics().compute_seconds};
    // Cold-key Monte-Carlo runs dominate first-contact assessment latency;
    // make them visible in the decision trace (the single-flight leader
    // computes on the assessing thread, so the context is reachable here).
    obs::TraceSpan trace_span{"calibrate/compute"};
    const double p = static_cast<double>(key.p_bucket) / static_cast<double>(config_.p_grid);
    const Binomial reference{key.m, p};
    const auto& ref_pmf = reference.pmf_table();

    // Derive a per-key seed so null samples are independent of call order.
    const std::uint64_t key_seed = config_.seed ^ (key.windows * 0x9e3779b97f4a7c15ULL) ^
                                   (static_cast<std::uint64_t>(key.m) << 32) ^ key.p_bucket;

    // Each chunk of kChunkReplications replications draws from its own
    // stream seeded by splitmix64(key_seed + chunk): a pure function of
    // key and chunk index, so the multiset of distances — and after the
    // sort, the exact vector — is identical whether the chunks ran on one
    // thread or many, in any order.
    const std::size_t chunks =
        (config_.replications + kChunkReplications - 1) / kChunkReplications;
    std::vector<double> distances(config_.replications);
    const auto run_chunk = [&](std::size_t chunk) {
        std::uint64_t state = key_seed + chunk;
        Rng rng{splitmix64(state)};
        EmpiricalDistribution sample{key.m};
        const std::size_t begin = chunk * kChunkReplications;
        const std::size_t end =
            std::min(begin + kChunkReplications, config_.replications);
        for (std::size_t r = begin; r < end; ++r) {
            sample.clear();
            for (std::uint64_t i = 0; i < key.windows; ++i) {
                sample.add(reference.sample(rng));
            }
            distances[r] = distance(sample, ref_pmf, config_.kind);
        }
    };
    if (chunks > 1 && threads() > 1) {
        pool().parallel_for(chunks, run_chunk);
    } else {
        for (std::size_t chunk = 0; chunk < chunks; ++chunk) run_chunk(chunk);
    }
    std::sort(distances.begin(), distances.end());
    return distances;
}

const std::vector<double>& Calibrator::null_for(const Key& key) {
    {
        // Hit fast path: no promise/future shared state (a heap
        // allocation) is created and no writer is blocked.  Entries are
        // never erased while the calibrator lives, so the returned
        // reference stays valid after the lock is dropped.
        const std::shared_lock lock{mutex_};
        if (const auto it = cache_.find(key); it != cache_.end()) {
            hit_count_.fetch_add(1, std::memory_order_relaxed);
            calibration_metrics().hits.increment();
            return it->second;
        }
    }
    std::promise<const std::vector<double>*> promise;
    std::shared_future<const std::vector<double>*> flight;
    bool leader = false;
    {
        const std::scoped_lock lock{mutex_};
        // Re-check: the key may have landed between the two locks.
        if (const auto it = cache_.find(key); it != cache_.end()) {
            hit_count_.fetch_add(1, std::memory_order_relaxed);
            calibration_metrics().hits.increment();
            return it->second;
        }
        if (const auto it = inflight_.find(key); it != inflight_.end()) {
            flight = it->second;  // join the computation already under way
            join_count_.fetch_add(1, std::memory_order_relaxed);
            calibration_metrics().joins.increment();
        } else {
            leader = true;
            flight = promise.get_future().share();
            inflight_.emplace(key, flight);
        }
    }
    if (!leader) return *flight.get();  // rethrows the leader's failure, if any
    try {
        std::vector<double> null = compute_null(key);
        const std::scoped_lock lock{mutex_};
        const auto* stored = &cache_.emplace(key, std::move(null)).first->second;
        inflight_.erase(key);
        calibration_metrics().cache_entries.add(1);
        promise.set_value(stored);
        return *stored;
    } catch (...) {
        {
            const std::scoped_lock lock{mutex_};
            inflight_.erase(key);  // let a later caller retry the key
        }
        promise.set_exception(std::current_exception());
        throw;
    }
}

double Calibrator::threshold(std::size_t windows, std::uint32_t m, double p_hat) {
    return threshold(windows, m, p_hat, config_.confidence);
}

double Calibrator::threshold(std::size_t windows, std::uint32_t m, double p_hat,
                             double confidence) {
    if (!(confidence > 0.0 && confidence < 1.0)) {
        throw std::invalid_argument("Calibrator::threshold: confidence in (0, 1)");
    }
    return sorted_quantile(null_for(make_key(windows, m, p_hat)), confidence);
}

const std::vector<double>& Calibrator::null_distances(std::size_t windows,
                                                      std::uint32_t m, double p_hat) {
    return null_for(make_key(windows, m, p_hat));
}

std::size_t Calibrator::precalibrate(const std::vector<std::size_t>& windows,
                                     const std::vector<std::uint32_t>& window_sizes,
                                     const std::vector<double>& p_hats) {
    // Quantization collapses many grid points onto one key; dedup first so
    // the fan-out is over distinct Monte-Carlo computations.
    std::set<Key> keys;
    for (const std::size_t k : windows) {
        for (const std::uint32_t m : window_sizes) {
            for (const double p : p_hats) {
                keys.insert(make_key(k, m, p));
            }
        }
    }
    std::vector<Key> cold;
    {
        const std::scoped_lock lock{mutex_};
        for (const Key& key : keys) {
            if (!cache_.contains(key)) cold.push_back(key);
        }
    }
    if (cold.empty()) return 0;
    // null_for (not compute_null) so a request racing the warm-up joins
    // the in-flight computation instead of duplicating it.
    pool().parallel_for(cold.size(),
                        [&](std::size_t i) { (void)null_for(cold[i]); });
    return cold.size();
}

std::size_t Calibrator::cache_size() const {
    const std::scoped_lock lock{mutex_};
    return cache_.size();
}

std::size_t Calibrator::compute_count() const noexcept {
    return compute_count_.load(std::memory_order_relaxed);
}

CalibratorStats Calibrator::stats() const {
    const std::scoped_lock lock{mutex_};
    CalibratorStats snapshot;
    snapshot.hits = hit_count_.load(std::memory_order_relaxed);
    snapshot.misses = compute_count_.load(std::memory_order_relaxed);
    snapshot.single_flight_joins = join_count_.load(std::memory_order_relaxed);
    snapshot.in_flight = inflight_.size();
    snapshot.cache_entries = cache_.size();
    return snapshot;
}

void Calibrator::clear_cache() {
    const std::scoped_lock lock{mutex_};
    calibration_metrics().cache_entries.sub(static_cast<std::int64_t>(cache_.size()));
    cache_.clear();
}

std::string Calibrator::header_line() const {
    std::ostringstream header;
    header << "hpr-calibration-cache v2 kind=" << to_string(config_.kind)
           << " replications=" << config_.replications << " p_grid=" << config_.p_grid
           << " seed=" << config_.seed << " chunk=" << kChunkReplications;
    return header.str();
}

void Calibrator::save_cache(const std::string& path) const {
    std::ofstream out{path};
    if (!out) {
        throw std::runtime_error("Calibrator::save_cache: cannot open '" + path + "'");
    }
    out << header_line() << '\n';
    out.precision(17);
    const std::scoped_lock lock{mutex_};
    for (const auto& [key, null_sample] : cache_) {
        out << key.windows << ' ' << key.m << ' ' << key.p_bucket << ':';
        for (const double v : null_sample) out << ' ' << v;
        out << '\n';
    }
    if (!out) {
        throw std::runtime_error("Calibrator::save_cache: write to '" + path +
                                 "' failed");
    }
}

void Calibrator::load_cache(const std::string& path) {
    std::ifstream in{path};
    if (!in) {
        throw std::runtime_error("Calibrator::load_cache: cannot open '" + path + "'");
    }
    const auto fail = [&path](std::size_t line_no, const std::string& what) {
        throw std::runtime_error("Calibrator::load_cache: " + what + " in '" + path +
                                 "' at line " + std::to_string(line_no));
    };
    std::string header;
    std::getline(in, header);
    if (header != header_line()) {
        throw std::runtime_error(
            "Calibrator::load_cache: calibration parameters in '" + path +
            "' do not match this calibrator");
    }
    std::string line;
    std::size_t line_no = 1;
    std::map<Key, std::vector<double>> loaded;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) continue;
        const auto colon = line.find(':');
        if (colon == std::string::npos) {
            fail(line_no, "malformed line");
        }
        Key key{};
        {
            std::istringstream key_in{line.substr(0, colon)};
            if (!(key_in >> key.windows >> key.m >> key.p_bucket)) {
                fail(line_no, "unparseable key");
            }
        }
        // A poisoned key would silently serve wrong thresholds on every
        // later lookup that buckets onto it — validate against this
        // calibrator's quantization grids before accepting anything.
        if (key.windows == 0) {
            fail(line_no, "invalid key (windows must be >= 1)");
        }
        if (key.m == 0) {
            fail(line_no, "invalid key (window size must be >= 1)");
        }
        if (key.p_bucket > config_.p_grid) {
            fail(line_no, "invalid key (p bucket beyond p_grid)");
        }
        if (key.windows > config_.windows_cap ||
            key.windows != effective_windows(key.windows)) {
            fail(line_no, "invalid key (window count off the calibration grid)");
        }
        if (loaded.contains(key)) {
            fail(line_no, "duplicate key");
        }
        std::vector<double> values;
        values.reserve(config_.replications);
        std::istringstream value_in{line.substr(colon + 1)};
        double v = 0.0;
        while (value_in >> v) values.push_back(v);
        if (values.size() != config_.replications ||
            !std::is_sorted(values.begin(), values.end()) ||
            !std::all_of(values.begin(), values.end(),
                         [](double d) { return std::isfinite(d) && d >= 0.0; })) {
            fail(line_no, "corrupt null sample");
        }
        loaded.emplace(key, std::move(values));
    }
    const std::scoped_lock lock{mutex_};
    std::int64_t fresh = 0;
    for (auto& [key, values] : loaded) {
        if (cache_.insert_or_assign(key, std::move(values)).second) ++fresh;
    }
    calibration_metrics().cache_entries.add(fresh);
}

}  // namespace hpr::stats
