#include "stats/calibrate.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hpr::stats {

double sorted_quantile(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) {
        throw std::invalid_argument("sorted_quantile: empty sample");
    }
    if (!(q >= 0.0 && q <= 1.0)) {
        throw std::invalid_argument("sorted_quantile: q must be in [0, 1]");
    }
    if (sorted.size() == 1) return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double empirical_quantile(std::vector<double> values, double q) {
    if (values.empty()) {
        throw std::invalid_argument("empirical_quantile: empty sample");
    }
    std::sort(values.begin(), values.end());
    return sorted_quantile(values, q);
}

Calibrator::Calibrator(CalibrationConfig config) : config_(config) {
    if (!(config_.confidence > 0.0 && config_.confidence < 1.0)) {
        throw std::invalid_argument("Calibrator: confidence must be in (0, 1)");
    }
    if (config_.replications == 0) {
        throw std::invalid_argument("Calibrator: need at least one replication");
    }
    if (config_.p_grid == 0) {
        throw std::invalid_argument("Calibrator: p_grid must be positive");
    }
    if (config_.windows_cap == 0) {
        throw std::invalid_argument("Calibrator: windows_cap must be positive");
    }
    if (!(config_.windows_grid_ratio >= 1.0)) {
        throw std::invalid_argument("Calibrator: windows_grid_ratio must be >= 1");
    }
}

std::size_t Calibrator::effective_windows(std::size_t windows) const {
    std::size_t k = std::min(windows, config_.windows_cap);
    if (config_.windows_grid_ratio > 1.0) {
        // Walk the deterministic integer grid 1, 2, 3, ... with ~ratio
        // spacing and keep the largest point <= k (conservative: smaller
        // k means a larger calibrated threshold).
        std::size_t point = 1;
        std::size_t best = 1;
        while (point <= k) {
            best = point;
            const auto next = static_cast<std::size_t>(
                std::floor(static_cast<double>(point) * config_.windows_grid_ratio));
            point = std::max(point + 1, next);
        }
        k = best;
    }
    return k;
}

Calibrator::Key Calibrator::make_key(std::size_t windows, std::uint32_t m,
                                     double p_hat) const {
    if (windows == 0) {
        throw std::invalid_argument("Calibrator: need at least one window");
    }
    if (m == 0) {
        throw std::invalid_argument("Calibrator: window size must be positive");
    }
    if (!(p_hat >= 0.0 && p_hat <= 1.0)) {
        throw std::invalid_argument("Calibrator: p_hat must be in [0, 1]");
    }
    auto bucket = static_cast<std::uint32_t>(
        std::lround(p_hat * static_cast<double>(config_.p_grid)));
    // Never round a non-degenerate p̂ onto the degenerate endpoints: the
    // null distance at p = 1 (or 0) is exactly zero, which would condemn
    // any history containing a single opposite outcome to fail forever.
    if (bucket == 0 && p_hat > 0.0) bucket = 1;
    if (bucket == config_.p_grid && p_hat < 1.0) bucket = config_.p_grid - 1;
    return Key{effective_windows(windows), m, bucket};
}

std::vector<double> Calibrator::compute_null(const Key& key) const {
    const double p = static_cast<double>(key.p_bucket) / static_cast<double>(config_.p_grid);
    const Binomial reference{key.m, p};
    const auto& ref_pmf = reference.pmf_table();

    // Derive a per-key seed so null samples are independent of call order.
    std::uint64_t seed_state = config_.seed ^ (key.windows * 0x9e3779b97f4a7c15ULL) ^
                               (static_cast<std::uint64_t>(key.m) << 32) ^ key.p_bucket;
    Rng rng{splitmix64(seed_state)};

    std::vector<double> distances;
    distances.reserve(config_.replications);
    EmpiricalDistribution sample{key.m};
    for (std::size_t r = 0; r < config_.replications; ++r) {
        sample.clear();
        for (std::uint64_t i = 0; i < key.windows; ++i) {
            sample.add(reference.sample(rng));
        }
        distances.push_back(distance(sample, ref_pmf, config_.kind));
    }
    std::sort(distances.begin(), distances.end());
    return distances;
}

const std::vector<double>& Calibrator::null_for(const Key& key) {
    {
        const std::scoped_lock lock{mutex_};
        if (const auto it = cache_.find(key); it != cache_.end()) return it->second;
    }
    std::vector<double> null = compute_null(key);
    const std::scoped_lock lock{mutex_};
    return cache_.emplace(key, std::move(null)).first->second;
}

double Calibrator::threshold(std::size_t windows, std::uint32_t m, double p_hat) {
    return threshold(windows, m, p_hat, config_.confidence);
}

double Calibrator::threshold(std::size_t windows, std::uint32_t m, double p_hat,
                             double confidence) {
    if (!(confidence > 0.0 && confidence < 1.0)) {
        throw std::invalid_argument("Calibrator::threshold: confidence in (0, 1)");
    }
    return sorted_quantile(null_for(make_key(windows, m, p_hat)), confidence);
}

const std::vector<double>& Calibrator::null_distances(std::size_t windows,
                                                      std::uint32_t m, double p_hat) {
    return null_for(make_key(windows, m, p_hat));
}

std::size_t Calibrator::cache_size() const {
    const std::scoped_lock lock{mutex_};
    return cache_.size();
}

void Calibrator::clear_cache() {
    const std::scoped_lock lock{mutex_};
    cache_.clear();
}

void Calibrator::save_cache(const std::string& path) const {
    std::ofstream out{path};
    if (!out) {
        throw std::runtime_error("Calibrator::save_cache: cannot open '" + path + "'");
    }
    out << "hpr-calibration-cache v1 kind=" << to_string(config_.kind)
        << " replications=" << config_.replications << " p_grid=" << config_.p_grid
        << " seed=" << config_.seed << '\n';
    out.precision(17);
    const std::scoped_lock lock{mutex_};
    for (const auto& [key, null_sample] : cache_) {
        out << key.windows << ' ' << key.m << ' ' << key.p_bucket << ':';
        for (const double v : null_sample) out << ' ' << v;
        out << '\n';
    }
    if (!out) {
        throw std::runtime_error("Calibrator::save_cache: write to '" + path +
                                 "' failed");
    }
}

void Calibrator::load_cache(const std::string& path) {
    std::ifstream in{path};
    if (!in) {
        throw std::runtime_error("Calibrator::load_cache: cannot open '" + path + "'");
    }
    std::string header;
    std::getline(in, header);
    std::ostringstream expected;
    expected << "hpr-calibration-cache v1 kind=" << to_string(config_.kind)
             << " replications=" << config_.replications
             << " p_grid=" << config_.p_grid << " seed=" << config_.seed;
    if (header != expected.str()) {
        throw std::runtime_error(
            "Calibrator::load_cache: calibration parameters in '" + path +
            "' do not match this calibrator");
    }
    std::string line;
    std::size_t line_no = 1;
    std::map<Key, std::vector<double>> loaded;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) continue;
        const auto colon = line.find(':');
        if (colon == std::string::npos) {
            throw std::runtime_error("Calibrator::load_cache: malformed line " +
                                     std::to_string(line_no));
        }
        Key key{};
        {
            std::istringstream key_in{line.substr(0, colon)};
            if (!(key_in >> key.windows >> key.m >> key.p_bucket)) {
                throw std::runtime_error("Calibrator::load_cache: bad key at line " +
                                         std::to_string(line_no));
            }
        }
        std::vector<double> values;
        values.reserve(config_.replications);
        std::istringstream value_in{line.substr(colon + 1)};
        double v = 0.0;
        while (value_in >> v) values.push_back(v);
        if (values.size() != config_.replications ||
            !std::is_sorted(values.begin(), values.end())) {
            throw std::runtime_error(
                "Calibrator::load_cache: corrupt null sample at line " +
                std::to_string(line_no));
        }
        loaded.emplace(key, std::move(values));
    }
    const std::scoped_lock lock{mutex_};
    for (auto& [key, values] : loaded) {
        cache_.insert_or_assign(key, std::move(values));
    }
}

}  // namespace hpr::stats
