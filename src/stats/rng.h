#ifndef HPR_STATS_RNG_H
#define HPR_STATS_RNG_H

/// \file rng.h
/// Deterministic, seedable pseudo-random number generation.
///
/// Every stochastic component in this library (Monte-Carlo calibration,
/// workload generation, simulated agents) draws from hpr::stats::Rng so
/// that experiments are exactly reproducible from a seed.  The generator
/// is xoshiro256** (Blackman & Vigna), seeded through splitmix64, which
/// gives high statistical quality at a fraction of the cost of
/// std::mt19937_64 and - unlike the standard distributions - produces
/// identical streams on every platform.

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace hpr::stats {

/// splitmix64 step: used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies std::uniform_random_bit_generator,
/// so it can also be plugged into <random> distributions when needed.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Construct from a 64-bit seed (expanded via splitmix64).
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

    /// Re-seed in place; the stream restarts deterministically.
    void reseed(std::uint64_t seed) noexcept {
        for (auto& word : state_) word = splitmix64(seed);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    /// Next raw 64-bit value.
    result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1) with 53 bits of precision.
    [[nodiscard]] double uniform() noexcept {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) noexcept {
        return lo + (hi - lo) * uniform();
    }

    /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
    [[nodiscard]] std::uint64_t uniform_int(std::uint64_t bound) noexcept;

    /// Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
        return lo + static_cast<std::int64_t>(
                        uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /// Bernoulli trial with success probability p (clamped to [0,1]).
    [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

    /// Standard normal via Marsaglia polar method.
    [[nodiscard]] double normal() noexcept;

    /// Fisher-Yates shuffle of a vector.
    template <typename T>
    void shuffle(std::vector<T>& values) noexcept {
        for (std::size_t i = values.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(uniform_int(i));
            std::swap(values[i - 1], values[j]);
        }
    }

    /// Split off an independent child generator (for parallel or nested
    /// stochastic components that must not perturb the parent stream).
    [[nodiscard]] Rng split() noexcept { return Rng{operator()()}; }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
    double spare_normal_ = 0.0;
    bool has_spare_normal_ = false;
};

}  // namespace hpr::stats

#endif  // HPR_STATS_RNG_H
