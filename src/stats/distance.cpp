#include "stats/distance.h"

#include <cmath>
#include <stdexcept>

namespace hpr::stats {

namespace {

// The kernels below share one shape: restrict-qualified pointers (the
// tables never alias), four independent accumulator lanes so the adds
// pipeline (and vectorize) instead of serializing on one dependency
// chain, and a scalar tail loop.  The lane-combine order (a0+a1)+(a2+a3)
// is part of the function's value: every caller — measured screening
// distances and Monte-Carlo calibration nulls alike — sums in the same
// order, so the two sides of a threshold comparison can never drift.
//
// The empirical (`counts`) variants divide the raw count table by n on
// the fly instead of materializing a pmf.  Division, not multiplication
// by a precomputed 1/n: IEEE-754 division is correctly rounded, so
// counts[i]/n is the exact pmf value (and n/n == 1.0 exactly) — a
// reciprocal multiply would perturb degenerate cases like an all-good
// history, whose distance to B(m, 1) must be exactly 0.  Pass n = 1.0
// for an empty sample, which reproduces the all-zero pmf exactly.

double l1_kernel(const double* __restrict lhs, const double* __restrict rhs,
                 std::size_t n) noexcept {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        a0 += std::fabs(lhs[i] - rhs[i]);
        a1 += std::fabs(lhs[i + 1] - rhs[i + 1]);
        a2 += std::fabs(lhs[i + 2] - rhs[i + 2]);
        a3 += std::fabs(lhs[i + 3] - rhs[i + 3]);
    }
    for (; i < n; ++i) a0 += std::fabs(lhs[i] - rhs[i]);
    return (a0 + a1) + (a2 + a3);
}

double l1_counts_kernel(const std::uint64_t* __restrict counts, double n_samples,
                        const double* __restrict rhs, std::size_t n) noexcept {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        a0 += std::fabs(static_cast<double>(counts[i]) / n_samples - rhs[i]);
        a1 += std::fabs(static_cast<double>(counts[i + 1]) / n_samples - rhs[i + 1]);
        a2 += std::fabs(static_cast<double>(counts[i + 2]) / n_samples - rhs[i + 2]);
        a3 += std::fabs(static_cast<double>(counts[i + 3]) / n_samples - rhs[i + 3]);
    }
    for (; i < n; ++i) {
        a0 += std::fabs(static_cast<double>(counts[i]) / n_samples - rhs[i]);
    }
    return (a0 + a1) + (a2 + a3);
}

double l2sq_kernel(const double* __restrict lhs, const double* __restrict rhs,
                   std::size_t n) noexcept {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const double d0 = lhs[i] - rhs[i];
        const double d1 = lhs[i + 1] - rhs[i + 1];
        const double d2 = lhs[i + 2] - rhs[i + 2];
        const double d3 = lhs[i + 3] - rhs[i + 3];
        a0 += d0 * d0;
        a1 += d1 * d1;
        a2 += d2 * d2;
        a3 += d3 * d3;
    }
    for (; i < n; ++i) {
        const double d = lhs[i] - rhs[i];
        a0 += d * d;
    }
    return (a0 + a1) + (a2 + a3);
}

double l2sq_counts_kernel(const std::uint64_t* __restrict counts, double n_samples,
                          const double* __restrict rhs, std::size_t n) noexcept {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const double d0 = static_cast<double>(counts[i]) / n_samples - rhs[i];
        const double d1 = static_cast<double>(counts[i + 1]) / n_samples - rhs[i + 1];
        const double d2 = static_cast<double>(counts[i + 2]) / n_samples - rhs[i + 2];
        const double d3 = static_cast<double>(counts[i + 3]) / n_samples - rhs[i + 3];
        a0 += d0 * d0;
        a1 += d1 * d1;
        a2 += d2 * d2;
        a3 += d3 * d3;
    }
    for (; i < n; ++i) {
        const double d = static_cast<double>(counts[i]) / n_samples - rhs[i];
        a0 += d * d;
    }
    return (a0 + a1) + (a2 + a3);
}

/// One chi-square term.  For g == 0, 1e9 * f reproduces the historical
/// impossible-outcome penalty, including contributing exactly +0.0 when
/// f is also 0 — so no data-dependent branch is needed.
inline double chi_square_term(double f, double g) noexcept {
    if (g > 0.0) {
        const double d = f - g;
        return d * d / g;
    }
    return 1e9 * f;
}

double chi_square_kernel(const double* __restrict lhs, const double* __restrict rhs,
                         std::size_t n) noexcept {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        a0 += chi_square_term(lhs[i], rhs[i]);
        a1 += chi_square_term(lhs[i + 1], rhs[i + 1]);
        a2 += chi_square_term(lhs[i + 2], rhs[i + 2]);
        a3 += chi_square_term(lhs[i + 3], rhs[i + 3]);
    }
    for (; i < n; ++i) a0 += chi_square_term(lhs[i], rhs[i]);
    return (a0 + a1) + (a2 + a3);
}

double chi_square_counts_kernel(const std::uint64_t* __restrict counts, double n_samples,
                                const double* __restrict rhs,
                                std::size_t n) noexcept {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        a0 += chi_square_term(static_cast<double>(counts[i]) / n_samples, rhs[i]);
        a1 += chi_square_term(static_cast<double>(counts[i + 1]) / n_samples, rhs[i + 1]);
        a2 += chi_square_term(static_cast<double>(counts[i + 2]) / n_samples, rhs[i + 2]);
        a3 += chi_square_term(static_cast<double>(counts[i + 3]) / n_samples, rhs[i + 3]);
    }
    for (; i < n; ++i) {
        a0 += chi_square_term(static_cast<double>(counts[i]) / n_samples, rhs[i]);
    }
    return (a0 + a1) + (a2 + a3);
}

/// KS is a running-max over prefix sums — inherently sequential, so it
/// keeps a single chain with a branch-free max.
double ks_kernel(const double* __restrict lhs, const double* __restrict rhs,
                 std::size_t n) noexcept {
    double d = 0.0;
    double cum_l = 0.0;
    double cum_r = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        cum_l += lhs[i];
        cum_r += rhs[i];
        d = std::fmax(d, std::fabs(cum_l - cum_r));
    }
    return d;
}

double ks_counts_kernel(const std::uint64_t* __restrict counts, double n_samples,
                        const double* __restrict rhs, std::size_t n) noexcept {
    double d = 0.0;
    double cum_l = 0.0;
    double cum_r = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        cum_l += static_cast<double>(counts[i]) / n_samples;
        cum_r += rhs[i];
        d = std::fmax(d, std::fabs(cum_l - cum_r));
    }
    return d;
}

}  // namespace

const char* to_string(DistanceKind kind) noexcept {
    switch (kind) {
        case DistanceKind::kL1: return "L1";
        case DistanceKind::kL2: return "L2";
        case DistanceKind::kTotalVariation: return "TV";
        case DistanceKind::kChiSquare: return "ChiSquare";
        case DistanceKind::kKolmogorovSmirnov: return "KS";
    }
    return "unknown";
}

double distance(std::span<const double> lhs, std::span<const double> rhs,
                DistanceKind kind) {
    if (lhs.size() != rhs.size()) {
        throw std::invalid_argument("distance: pmf tables differ in length");
    }
    const std::size_t n = lhs.size();
    switch (kind) {
        case DistanceKind::kL1: return l1_kernel(lhs.data(), rhs.data(), n);
        case DistanceKind::kL2:
            return std::sqrt(l2sq_kernel(lhs.data(), rhs.data(), n));
        case DistanceKind::kTotalVariation:
            return 0.5 * l1_kernel(lhs.data(), rhs.data(), n);
        case DistanceKind::kChiSquare:
            return chi_square_kernel(lhs.data(), rhs.data(), n);
        case DistanceKind::kKolmogorovSmirnov:
            return ks_kernel(lhs.data(), rhs.data(), n);
    }
    throw std::invalid_argument("distance: unknown DistanceKind");
}

double l1_distance(const EmpiricalDistribution& empirical,
                   std::span<const double> reference_pmf) {
    const auto& counts = empirical.count_table();
    if (counts.size() != reference_pmf.size()) {
        throw std::invalid_argument("l1_distance: support mismatch");
    }
    if (empirical.empty()) {
        // An empty sample carries no evidence; define its distance to any
        // reference as the maximum possible L1 value.
        return 2.0;
    }
    const auto n_samples = static_cast<double>(empirical.size());
    return l1_counts_kernel(counts.data(), n_samples, reference_pmf.data(),
                            counts.size());
}

double distance(const EmpiricalDistribution& empirical,
                std::span<const double> reference_pmf, DistanceKind kind) {
    if (kind == DistanceKind::kL1) return l1_distance(empirical, reference_pmf);
    const auto& counts = empirical.count_table();
    if (counts.size() != reference_pmf.size()) {
        throw std::invalid_argument("distance: support mismatch");
    }
    const std::size_t n = counts.size();
    // n_samples = 1 on an empty sample: every empirical term becomes
    // exactly 0.0, matching the historical all-zero pmf-table semantics.
    const double n_samples =
        empirical.empty() ? 1.0 : static_cast<double>(empirical.size());
    switch (kind) {
        case DistanceKind::kL1:
            return l1_counts_kernel(counts.data(), n_samples, reference_pmf.data(), n);
        case DistanceKind::kL2:
            return std::sqrt(
                l2sq_counts_kernel(counts.data(), n_samples, reference_pmf.data(), n));
        case DistanceKind::kTotalVariation:
            return 0.5 *
                   l1_counts_kernel(counts.data(), n_samples, reference_pmf.data(), n);
        case DistanceKind::kChiSquare:
            return chi_square_counts_kernel(counts.data(), n_samples,
                                            reference_pmf.data(), n);
        case DistanceKind::kKolmogorovSmirnov:
            return ks_counts_kernel(counts.data(), n_samples, reference_pmf.data(), n);
    }
    throw std::invalid_argument("distance: unknown DistanceKind");
}

double distance(const EmpiricalDistribution& empirical, const Binomial& reference,
                DistanceKind kind) {
    return distance(empirical, reference.pmf_span(), kind);
}

}  // namespace hpr::stats
