#include "stats/distance.h"

#include <cmath>
#include <stdexcept>

namespace hpr::stats {

const char* to_string(DistanceKind kind) noexcept {
    switch (kind) {
        case DistanceKind::kL1: return "L1";
        case DistanceKind::kL2: return "L2";
        case DistanceKind::kTotalVariation: return "TV";
        case DistanceKind::kChiSquare: return "ChiSquare";
        case DistanceKind::kKolmogorovSmirnov: return "KS";
    }
    return "unknown";
}

double distance(const std::vector<double>& lhs, const std::vector<double>& rhs,
                DistanceKind kind) {
    if (lhs.size() != rhs.size()) {
        throw std::invalid_argument("distance: pmf tables differ in length");
    }
    switch (kind) {
        case DistanceKind::kL1: {
            double d = 0.0;
            for (std::size_t i = 0; i < lhs.size(); ++i) d += std::fabs(lhs[i] - rhs[i]);
            return d;
        }
        case DistanceKind::kL2: {
            double d = 0.0;
            for (std::size_t i = 0; i < lhs.size(); ++i) {
                const double diff = lhs[i] - rhs[i];
                d += diff * diff;
            }
            return std::sqrt(d);
        }
        case DistanceKind::kTotalVariation: {
            double d = 0.0;
            for (std::size_t i = 0; i < lhs.size(); ++i) d += std::fabs(lhs[i] - rhs[i]);
            return 0.5 * d;
        }
        case DistanceKind::kChiSquare: {
            double d = 0.0;
            for (std::size_t i = 0; i < lhs.size(); ++i) {
                if (rhs[i] > 0.0) {
                    const double diff = lhs[i] - rhs[i];
                    d += diff * diff / rhs[i];
                } else if (lhs[i] > 0.0) {
                    // Mass on an impossible outcome: infinite discrepancy in
                    // theory; report a large finite penalty to stay orderable.
                    d += 1e9 * lhs[i];
                }
            }
            return d;
        }
        case DistanceKind::kKolmogorovSmirnov: {
            double d = 0.0;
            double cum_l = 0.0;
            double cum_r = 0.0;
            for (std::size_t i = 0; i < lhs.size(); ++i) {
                cum_l += lhs[i];
                cum_r += rhs[i];
                d = std::max(d, std::fabs(cum_l - cum_r));
            }
            return d;
        }
    }
    throw std::invalid_argument("distance: unknown DistanceKind");
}

double l1_distance(const EmpiricalDistribution& empirical,
                   const std::vector<double>& reference_pmf) {
    const auto& counts = empirical.count_table();
    if (counts.size() != reference_pmf.size()) {
        throw std::invalid_argument("l1_distance: support mismatch");
    }
    if (empirical.empty()) {
        // An empty sample carries no evidence; define its distance to any
        // reference as the maximum possible L1 value.
        return 2.0;
    }
    const double n = static_cast<double>(empirical.size());
    double d = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        d += std::fabs(static_cast<double>(counts[i]) / n - reference_pmf[i]);
    }
    return d;
}

double distance(const EmpiricalDistribution& empirical,
                const std::vector<double>& reference_pmf, DistanceKind kind) {
    if (kind == DistanceKind::kL1) return l1_distance(empirical, reference_pmf);
    return distance(empirical.pmf_table(), reference_pmf, kind);
}

double distance(const EmpiricalDistribution& empirical, const Binomial& reference,
                DistanceKind kind) {
    return distance(empirical, reference.pmf_table(), kind);
}

}  // namespace hpr::stats
