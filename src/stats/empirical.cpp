#include "stats/empirical.h"

#include <stdexcept>

namespace hpr::stats {

EmpiricalDistribution::EmpiricalDistribution(std::uint32_t max_value)
    : counts_(static_cast<std::size_t>(max_value) + 1, 0) {}

EmpiricalDistribution::EmpiricalDistribution(std::uint32_t max_value,
                                             const std::vector<std::uint32_t>& samples)
    : EmpiricalDistribution(max_value) {
    for (const std::uint32_t s : samples) add(s);
}

void EmpiricalDistribution::add(std::uint32_t value) {
    if (value >= counts_.size()) {
        throw std::invalid_argument("EmpiricalDistribution::add: value beyond support");
    }
    ++counts_[value];
    ++total_;
    value_sum_ += value;
    value_sq_sum_ += static_cast<std::uint64_t>(value) * value;
}

void EmpiricalDistribution::remove(std::uint32_t value) {
    if (value >= counts_.size() || counts_[value] == 0) {
        throw std::logic_error("EmpiricalDistribution::remove: value not recorded");
    }
    --counts_[value];
    --total_;
    value_sum_ -= value;
    value_sq_sum_ -= static_cast<std::uint64_t>(value) * value;
}

double EmpiricalDistribution::variance() const noexcept {
    if (total_ < 2) return 0.0;
    const double n = static_cast<double>(total_);
    const double mean_v = mean();
    const double ex2 = static_cast<double>(value_sq_sum_) / n;
    const double biased = ex2 - mean_v * mean_v;
    return biased * n / (n - 1.0);
}

std::vector<double> EmpiricalDistribution::pmf_table() const {
    std::vector<double> table(counts_.size(), 0.0);
    if (total_ == 0) return table;
    const double n = static_cast<double>(total_);
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        table[i] = static_cast<double>(counts_[i]) / n;
    }
    return table;
}

void EmpiricalDistribution::merge(const EmpiricalDistribution& other) {
    if (other.counts_.size() != counts_.size()) {
        throw std::invalid_argument("EmpiricalDistribution::merge: support mismatch");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    value_sum_ += other.value_sum_;
    value_sq_sum_ += other.value_sq_sum_;
}

void EmpiricalDistribution::reset(std::uint32_t max_value) {
    // assign keeps the allocation when the new support fits in capacity.
    counts_.assign(static_cast<std::size_t>(max_value) + 1, 0);
    total_ = 0;
    value_sum_ = 0;
    value_sq_sum_ = 0;
}

void EmpiricalDistribution::clear() noexcept {
    for (auto& c : counts_) c = 0;
    total_ = 0;
    value_sum_ = 0;
    value_sq_sum_ = 0;
}

}  // namespace hpr::stats
