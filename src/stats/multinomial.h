#ifndef HPR_STATS_MULTINOMIAL_H
#define HPR_STATS_MULTINOMIAL_H

/// \file multinomial.h
/// Multinomial model for multi-valued feedback (paper §3.1 extension):
/// when feedback is not binary (e.g. {positive, neutral, negative}), the
/// per-window category counts of an honest player follow a multinomial
/// Mult(m, p_1..p_c).  Behavior testing then compares, per category, the
/// empirical distribution of per-window counts against the marginal
/// Binomial(m, p_j) — the exact analogue of the binary test.

#include <cstdint>
#include <vector>

#include "stats/binomial.h"
#include "stats/rng.h"

namespace hpr::stats {

/// Multinomial distribution Mult(n, p) over c categories.
class Multinomial {
public:
    /// \throws std::invalid_argument if probabilities are negative or do
    /// not sum to 1 within 1e-9 (they are renormalized afterwards).
    Multinomial(std::uint32_t n, std::vector<double> probabilities);

    [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
    [[nodiscard]] std::size_t categories() const noexcept { return p_.size(); }
    [[nodiscard]] const std::vector<double>& probabilities() const noexcept { return p_; }

    /// log P(X = counts); counts must sum to n and have size categories().
    [[nodiscard]] double log_pmf(const std::vector<std::uint32_t>& counts) const;

    /// P(X = counts).
    [[nodiscard]] double pmf(const std::vector<std::uint32_t>& counts) const;

    /// The marginal distribution of category j is Binomial(n, p_j).
    [[nodiscard]] Binomial marginal(std::size_t j) const;

    /// Draw one vector of category counts (conditional binomial method).
    [[nodiscard]] std::vector<std::uint32_t> sample(Rng& rng) const;

private:
    std::uint32_t n_;
    std::vector<double> p_;
};

}  // namespace hpr::stats

#endif  // HPR_STATS_MULTINOMIAL_H
