#include "stats/rng.h"

#include <cmath>

namespace hpr::stats {

std::uint64_t Rng::uniform_int(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Lemire's nearly-divisionless unbiased bounded generation.
    std::uint64_t x = operator()();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = (0 - bound) % bound;
        while (low < threshold) {
            x = operator()();
            m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
    if (has_spare_normal_) {
        has_spare_normal_ = false;
        return spare_normal_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_normal_ = v * factor;
    has_spare_normal_ = true;
    return u * factor;
}

}  // namespace hpr::stats
