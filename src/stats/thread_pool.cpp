#include "stats/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace hpr::stats {

namespace {

/// Process-wide pool metrics (aggregated over every ThreadPool instance).
struct PoolMetrics {
    obs::Counter& jobs;
    obs::Gauge& queue_depth;
    obs::Histogram& job_seconds;
};

PoolMetrics& pool_metrics() {
    auto& registry = obs::default_registry();
    static PoolMetrics metrics{
        registry.counter("hpr_threadpool_jobs_total",
                         "parallel_for jobs submitted to any worker pool"),
        registry.gauge("hpr_threadpool_queue_depth",
                       "Jobs currently queued or running on worker pools"),
        registry.histogram("hpr_threadpool_job_seconds",
                           "Wall time of one parallel_for call (submit to completion)"),
    };
    return metrics;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        threads_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::scoped_lock lock{mutex_};
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& thread : threads_) thread.join();
}

void ThreadPool::drain(const std::shared_ptr<Job>& job) {
    for (;;) {
        const std::size_t index = job->next.fetch_add(1, std::memory_order_relaxed);
        if (index >= job->count) return;
        try {
            (*job->body)(index);
        } catch (...) {
            const std::scoped_lock lock{mutex_};
            if (!job->error) job->error = std::current_exception();
            // Abandon the remaining indices: nothing downstream may rely
            // on partial results once the job is poisoned.
            job->next.store(job->count, std::memory_order_relaxed);
        }
    }
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock lock{mutex_};
            work_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
            if (jobs_.empty()) {
                if (stop_) return;
                continue;
            }
            job = jobs_.front();
            if (job->next.load(std::memory_order_relaxed) >= job->count) {
                // Fully claimed; retire it from the queue and look again.
                jobs_.pop_front();
                pool_metrics().queue_depth.sub(1);
                continue;
            }
            ++job->running;
        }
        drain(job);
        {
            const std::scoped_lock lock{mutex_};
            --job->running;
        }
        done_cv_.notify_all();
    }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
    if (count == 0) return;
    pool_metrics().jobs.increment();
    obs::ScopedTimer span{pool_metrics().job_seconds};
    if (threads_.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i) body(i);
        return;
    }
    auto job = std::make_shared<Job>(count, &body);
    {
        const std::scoped_lock lock{mutex_};
        jobs_.push_back(job);
        pool_metrics().queue_depth.add(1);
    }
    work_cv_.notify_all();

    drain(job);  // the caller helps — guarantees progress even under nesting

    std::unique_lock lock{mutex_};
    done_cv_.wait(lock, [&] {
        return job->running == 0 &&
               job->next.load(std::memory_order_relaxed) >= job->count;
    });
    if (const auto it = std::find(jobs_.begin(), jobs_.end(), job); it != jobs_.end()) {
        jobs_.erase(it);
        pool_metrics().queue_depth.sub(1);
    }
    const std::exception_ptr error = job->error;
    lock.unlock();
    if (error) std::rethrow_exception(error);
}

}  // namespace hpr::stats
