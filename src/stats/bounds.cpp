#include "stats/bounds.h"

#include <cmath>
#include <stdexcept>

namespace hpr::stats {

double hoeffding_bound(std::uint64_t n, double epsilon) {
    if (n == 0) {
        throw std::invalid_argument("hoeffding_bound: need at least one trial");
    }
    if (!(epsilon > 0.0)) {
        throw std::invalid_argument("hoeffding_bound: epsilon must be positive");
    }
    const double bound =
        2.0 * std::exp(-2.0 * static_cast<double>(n) * epsilon * epsilon);
    return bound > 1.0 ? 1.0 : bound;
}

std::uint64_t lemma31_min_history(double epsilon, double delta) {
    if (!(epsilon > 0.0)) {
        throw std::invalid_argument("lemma31_min_history: epsilon must be positive");
    }
    if (!(delta > 0.0 && delta < 1.0)) {
        throw std::invalid_argument("lemma31_min_history: delta must be in (0, 1)");
    }
    const double n = std::log(2.0 / delta) / (2.0 * epsilon * epsilon);
    return static_cast<std::uint64_t>(std::ceil(n));
}

}  // namespace hpr::stats
