#include "stats/moments.h"

#include <cmath>

namespace hpr::stats {

double RunningMoments::stddev() const noexcept { return std::sqrt(variance()); }

double RunningMoments::std_error() const noexcept {
    if (count_ == 0) return 0.0;
    return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningMoments::ci_half_width(double z) const noexcept {
    return z * std_error();
}

void RunningMoments::merge(const RunningMoments& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = n1 + n2;
    mean_ += delta * n2 / total;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
}

}  // namespace hpr::stats
