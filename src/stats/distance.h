#ifndef HPR_STATS_DISTANCE_H
#define HPR_STATS_DISTANCE_H

/// \file distance.h
/// Distances between a discrete empirical distribution and a reference
/// distribution over the same integer support.
///
/// The paper's behavior test uses the L1 norm (§3.2).  L2, total
/// variation, chi-square and Kolmogorov-Smirnov are provided as
/// alternatives for sensitivity studies; all share the same calibration
/// machinery (stats/calibrate.h).
///
/// All entry points funnel into branch-free kernels over contiguous
/// tables (restrict-qualified 4-lane unrolled accumulators the compiler
/// auto-vectorizes).  The empirical overloads operate directly on the
/// raw count table scaled by 1/n — no empirical pmf is ever
/// materialized, for any DistanceKind — and accept std::span so Binomial
/// table views (Binomial::pmf_span) are consumed without a copy.  Every
/// caller of a given overload gets the same kernel, so measured
/// distances and Monte-Carlo calibration nulls stay mutually consistent.

#include <cstdint>
#include <span>
#include <vector>

#include "stats/binomial.h"
#include "stats/empirical.h"

namespace hpr::stats {

/// Which distance functional a behavior test uses.
enum class DistanceKind : std::uint8_t {
    kL1,              ///< sum |f - g|                 (the paper's choice)
    kL2,              ///< sqrt(sum (f - g)^2)
    kTotalVariation,  ///< (1/2) sum |f - g|
    kChiSquare,       ///< sum (f - g)^2 / g over g > 0
    kKolmogorovSmirnov,  ///< max_k |F(k) - G(k)|
};

[[nodiscard]] const char* to_string(DistanceKind kind) noexcept;

/// Distance between two pmf tables of equal length.
/// \throws std::invalid_argument on length mismatch.
[[nodiscard]] double distance(std::span<const double> lhs,
                              std::span<const double> rhs, DistanceKind kind);

/// L1 distance between an empirical distribution and a reference pmf table
/// without materializing the empirical pmf (hot path of behavior testing).
/// \throws std::invalid_argument on support mismatch.
[[nodiscard]] double l1_distance(const EmpiricalDistribution& empirical,
                                 std::span<const double> reference_pmf);

/// Generic distance between an empirical distribution and a reference pmf.
[[nodiscard]] double distance(const EmpiricalDistribution& empirical,
                              std::span<const double> reference_pmf,
                              DistanceKind kind);

/// Convenience overload against a Binomial reference (borrows its table).
[[nodiscard]] double distance(const EmpiricalDistribution& empirical,
                              const Binomial& reference, DistanceKind kind);

}  // namespace hpr::stats

#endif  // HPR_STATS_DISTANCE_H
