#ifndef HPR_SERVE_BATCH_ASSESSOR_H
#define HPR_SERVE_BATCH_ASSESSOR_H

/// \file batch_assessor.h
/// Streaming-first serving core: incremental screening as the primary
/// assessment path, parallel batch re-assessment as the cross-check
/// oracle.
///
/// A reputation server answering "which of these servers can be trusted
/// right now?" for a large population cannot afford one thread walking
/// one history at a time — the assessment layer has to keep up with the
/// whole community's transaction rate.  BatchAssessor therefore serves
/// from two paths:
///
/// **Primary — the streaming screener bank** (on by default).  One
/// core::OnlineScreener per observed server, lock-striped like the
/// store, each bounded to `screener_horizon` complete windows of
/// retained state.  Feedbacks stream in through observe() at O(1)
/// amortized per feedback; assess() answers from the screener's standing
/// state — suspicious streams are rejected without the O(n) history
/// rescan, clear streams only pay phase 2 — and falls back to the full
/// two-phase scan while a stream has not accumulated enough windows to
/// be judged.  The bank's memory is bounded: horizon-bounded rings per
/// stream, and drop_streams()/evict_streams() tie stream retention to
/// FeedbackStore's eviction machinery, so evicting a server's cold
/// history also releases its screener.  Streaming verdicts follow the
/// streaming semantics (start-anchored windows, patience/recovery
/// hysteresis), so they are intentionally NOT bit-identical to batch
/// screening; over the retained horizon they agree with batch
/// multi-testing of the newest horizon*m transactions
/// (bench/streaming_steady_state enforces zero divergence).
///
/// **Oracle — parallel batch re-assessment.**  assess_batch() (and
/// assess()/assess_all() for never-observed servers) fans a set of
/// server ids across a stats::ThreadPool: each worker takes a
/// snapshot-consistent copy of its server's history from the sharded
/// FeedbackStore and runs the shared TwoPhaseAssessor on it.  Results
/// are deterministic: the pool decides only which thread assesses a
/// server, never what the assessment computes, so verdicts are
/// bit-identical to a sequential loop at any thread count.  This is the
/// equivalence-tested ground truth the streaming path is checked
/// against.

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/online.h"
#include "core/two_phase.h"
#include "repsys/store.h"
#include "repsys/trust.h"
#include "stats/calibrate.h"
#include "stats/thread_pool.h"

namespace hpr::serve {

/// Tuning knobs of the serving layer.
struct BatchAssessorConfig {
    /// The per-server assessment everything fans out to.
    core::TwoPhaseConfig assessment{};

    /// Total assessing threads (pool workers + the participating caller).
    /// 0 = one per hardware thread.  Purely a speed knob: batch results
    /// are bit-identical at any thread count.
    std::size_t threads = 0;

    /// Keep an OnlineScreener per observed server and let assess()
    /// shortcut from its standing state (see the file comment).  On by
    /// default: streaming is the primary serving mode; set to false for
    /// pure batch (oracle-only) serving.
    bool incremental = true;

    /// Hysteresis of the incremental screeners (their test config is
    /// taken from `assessment.test`).
    std::size_t patience = 2;
    std::size_t recovery = 2;

    /// Retention horizon, in complete windows, of each incremental
    /// screener (core::OnlineScreenerConfig::max_windows).  Bounded by
    /// default so the bank's resident memory is O(tracked servers), not
    /// O(stream age); 0 keeps unbounded per-stream state.
    std::size_t screener_horizon = 64;

    /// Lock stripes of the incremental screener bank.
    std::size_t screener_stripes = 16;
};

/// One server's assessment out of a batch.
struct ServerAssessment {
    repsys::EntityId server = 0;
    core::Assessment assessment;
};

/// Thread-parallel assessment of server populations against a
/// FeedbackStore.  Thread-safe: any number of threads may call assess /
/// observe / drop_streams concurrently (the underlying calibration cache
/// is shared and thread-safe, the screener bank is lock-striped).
class BatchAssessor {
public:
    /// \param trust  phase-2 trust function (must not be null).
    /// \throws std::invalid_argument if trust is null.
    BatchAssessor(BatchAssessorConfig config,
                  std::shared_ptr<const repsys::TrustFunction> trust,
                  std::shared_ptr<stats::Calibrator> calibrator = nullptr);

    ~BatchAssessor();  // out of line: ScreenerStripe is incomplete here

    /// Assess the given servers against the store, fanning across the
    /// pool.  Streaming-first: servers with a judged screener answer
    /// from its standing state; the rest take the full two-phase scan.
    /// Results arrive in the order of `servers`.
    /// \throws std::out_of_range if any id is unknown to the store.
    [[nodiscard]] std::vector<ServerAssessment> assess(
        const repsys::FeedbackStore& store,
        const std::vector<repsys::EntityId>& servers) const;

    /// Assess every server the store knows (ascending id order).
    [[nodiscard]] std::vector<ServerAssessment> assess_all(
        const repsys::FeedbackStore& store) const;

    /// The cross-check oracle: full two-phase re-assessment of every
    /// requested server, ignoring the screener bank entirely.
    /// Bit-identical to the sequential TwoPhaseAssessor loop at any
    /// thread count.
    [[nodiscard]] std::vector<ServerAssessment> assess_batch(
        const repsys::FeedbackStore& store,
        const std::vector<repsys::EntityId>& servers) const;

    /// Incremental mode: feed one live feedback to its server's screener
    /// (created on first sight).  O(1) amortized.  No-op when the config
    /// did not enable incremental mode.
    void observe(const repsys::Feedback& feedback);

    /// Standing stream state of a server's screener; kInsufficient for
    /// servers never observed (or when incremental mode is off).
    [[nodiscard]] core::StreamState stream_state(repsys::EntityId server) const;

    /// Point-in-time detail of one live screener, copied under its
    /// stripe lock (see stream_info()).
    struct StreamInfo {
        core::StreamState state = core::StreamState::kInsufficient;
        std::size_t transactions = 0;      ///< outcomes observed, lifetime
        std::size_t windows = 0;           ///< complete windows, lifetime
        std::size_t retained_windows = 0;  ///< windows inside the horizon
        std::size_t horizon = 0;           ///< configured retention (0 = unbounded)
        std::size_t evaluations = 0;       ///< ladder evaluations performed
        std::size_t failing_streak = 0;
        std::size_t passing_streak = 0;
        double p_hat = 0.0;                ///< over the retained windows
        std::size_t memory_bytes = 0;      ///< screener object + ring storage
    };

    /// Full standing state of a server's screener — what the live
    /// `/servers/<id>` introspection page renders; std::nullopt for
    /// servers never observed or when incremental mode is off.
    [[nodiscard]] std::optional<StreamInfo> stream_info(
        repsys::EntityId server) const;

    /// Drop the screeners of the given servers (e.g. the `forgotten`
    /// output of FeedbackStore::evict_before).  Returns how many live
    /// screeners were released.
    std::size_t drop_streams(std::span<const repsys::EntityId> servers);

    /// Sync the bank against the store: drop every screener whose server
    /// the store no longer knows (full retention reconciliation; prefer
    /// drop_streams with evict_before's `forgotten` list when available).
    /// Returns how many screeners were released.
    std::size_t evict_streams(const repsys::FeedbackStore& store);

    /// Number of servers with a live screener.
    [[nodiscard]] std::size_t tracked_streams() const;

    /// Resident bytes of the screener bank (screener objects + ring
    /// storage + an estimate of the map-node overhead).  The
    /// hpr_serving_screener_bytes gauge is maintained incrementally as
    /// streams are created and dropped — exact under a bounded horizon,
    /// where a screener's footprint is constant for life — and this
    /// full recount republishes it (the authoritative value when
    /// screener_horizon is 0 and rings grow).
    [[nodiscard]] std::size_t stream_memory_bytes() const;

    /// Resolved executor count (pool workers + the caller).
    [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

    [[nodiscard]] const BatchAssessorConfig& config() const noexcept { return config_; }
    [[nodiscard]] const core::TwoPhaseAssessor& assessor() const noexcept {
        return assessor_;
    }

private:
    struct ScreenerStripe;

    /// Assess one server: streaming shortcut when possible (and allowed),
    /// else the full two-phase scan of a shard-consistent snapshot.
    [[nodiscard]] core::Assessment assess_one(const repsys::FeedbackStore& store,
                                              repsys::EntityId server,
                                              bool use_streams) const;

    [[nodiscard]] std::vector<ServerAssessment> assess_impl(
        const repsys::FeedbackStore& store,
        const std::vector<repsys::EntityId>& servers, bool use_streams) const;

    [[nodiscard]] ScreenerStripe& stripe_for(repsys::EntityId server) const;

    BatchAssessorConfig config_;
    core::TwoPhaseAssessor assessor_;
    std::size_t threads_;
    mutable stats::ThreadPool pool_;
    std::vector<std::unique_ptr<ScreenerStripe>> stripes_;  ///< empty unless incremental
};

}  // namespace hpr::serve

#endif  // HPR_SERVE_BATCH_ASSESSOR_H
