#ifndef HPR_SERVE_BATCH_ASSESSOR_H
#define HPR_SERVE_BATCH_ASSESSOR_H

/// \file batch_assessor.h
/// Parallel batch assessment: the serving core that keeps the paper's
/// two-phase screening ahead of community-scale interaction rates.
///
/// A reputation server answering "which of these servers can be trusted
/// right now?" for a large population cannot afford one thread walking
/// one history at a time — the assessment layer has to keep up with the
/// whole community's transaction rate.  BatchAssessor fans a set of
/// server ids across a stats::ThreadPool: each worker takes a
/// snapshot-consistent copy of its server's history from the sharded
/// FeedbackStore (so assessment never blocks ingest beyond one shard
/// lock) and runs the shared TwoPhaseAssessor on it.  Results are
/// deterministic: the pool decides only which thread assesses a server,
/// never what the assessment computes, so verdicts are bit-identical to
/// a sequential loop at any thread count.
///
/// The optional **incremental mode** keeps one core::OnlineScreener per
/// observed server (lock-striped like the store).  Feedbacks stream in
/// through observe() at O(1) amortized per feedback; assess() then
/// answers from the screener's standing state — suspicious streams are
/// rejected without the O(n) history rescan, clear streams only pay
/// phase 2 — and falls back to the full two-phase scan while a stream
/// has not accumulated enough windows to be judged.  Incremental
/// verdicts follow the streaming semantics (start-anchored windows,
/// patience/recovery hysteresis), so they are intentionally NOT
/// bit-identical to batch screening; equivalence tests pin the default
/// full mode only.

#include <cstddef>
#include <memory>
#include <vector>

#include "core/online.h"
#include "core/two_phase.h"
#include "repsys/store.h"
#include "repsys/trust.h"
#include "stats/calibrate.h"
#include "stats/thread_pool.h"

namespace hpr::serve {

/// Tuning knobs of the batch assessment layer.
struct BatchAssessorConfig {
    /// The per-server assessment everything fans out to.
    core::TwoPhaseConfig assessment{};

    /// Total assessing threads (pool workers + the participating caller).
    /// 0 = one per hardware thread.  Purely a speed knob: results are
    /// bit-identical at any thread count.
    std::size_t threads = 0;

    /// Keep an OnlineScreener per observed server and let assess()
    /// shortcut from its standing state (see the file comment).
    bool incremental = false;

    /// Hysteresis of the incremental screeners (their test config is
    /// taken from `assessment.test`).
    std::size_t patience = 2;
    std::size_t recovery = 2;

    /// Lock stripes of the incremental screener bank.
    std::size_t screener_stripes = 16;
};

/// One server's assessment out of a batch.
struct ServerAssessment {
    repsys::EntityId server = 0;
    core::Assessment assessment;
};

/// Thread-parallel assessment of server populations against a
/// FeedbackStore.  Thread-safe: any number of threads may call assess /
/// observe concurrently (the underlying calibration cache is shared and
/// thread-safe, the screener bank is lock-striped).
class BatchAssessor {
public:
    /// \param trust  phase-2 trust function (must not be null).
    /// \throws std::invalid_argument if trust is null.
    BatchAssessor(BatchAssessorConfig config,
                  std::shared_ptr<const repsys::TrustFunction> trust,
                  std::shared_ptr<stats::Calibrator> calibrator = nullptr);

    ~BatchAssessor();  // out of line: ScreenerStripe is incomplete here

    /// Assess the given servers against the store, fanning across the
    /// pool.  Results arrive in the order of `servers`.
    /// \throws std::out_of_range if any id is unknown to the store.
    [[nodiscard]] std::vector<ServerAssessment> assess(
        const repsys::FeedbackStore& store,
        const std::vector<repsys::EntityId>& servers) const;

    /// Assess every server the store knows (ascending id order).
    [[nodiscard]] std::vector<ServerAssessment> assess_all(
        const repsys::FeedbackStore& store) const;

    /// Incremental mode: feed one live feedback to its server's screener
    /// (created on first sight).  O(1) amortized.  No-op when the config
    /// did not enable incremental mode.
    void observe(const repsys::Feedback& feedback);

    /// Standing stream state of a server's screener; kInsufficient for
    /// servers never observed (or when incremental mode is off).
    [[nodiscard]] core::StreamState stream_state(repsys::EntityId server) const;

    /// Number of servers with a live screener.
    [[nodiscard]] std::size_t tracked_streams() const;

    /// Resolved executor count (pool workers + the caller).
    [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

    [[nodiscard]] const BatchAssessorConfig& config() const noexcept { return config_; }
    [[nodiscard]] const core::TwoPhaseAssessor& assessor() const noexcept {
        return assessor_;
    }

private:
    struct ScreenerStripe;

    /// Assess one server: incremental shortcut when possible, else the
    /// full two-phase scan of a shard-consistent snapshot.
    [[nodiscard]] core::Assessment assess_one(const repsys::FeedbackStore& store,
                                              repsys::EntityId server) const;

    [[nodiscard]] ScreenerStripe& stripe_for(repsys::EntityId server) const;

    BatchAssessorConfig config_;
    core::TwoPhaseAssessor assessor_;
    std::size_t threads_;
    mutable stats::ThreadPool pool_;
    std::vector<std::unique_ptr<ScreenerStripe>> stripes_;  ///< empty unless incremental
};

}  // namespace hpr::serve

#endif  // HPR_SERVE_BATCH_ASSESSOR_H
