#include "serve/batch_assessor.h"

#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace hpr::serve {

namespace {

/// Batch-serving metrics, shared by every BatchAssessor in the process.
struct ServeMetrics {
    obs::Counter& batches;
    obs::Counter& batch_servers;
    obs::Counter& observes;
    obs::Counter& shortcuts;
    obs::Counter& screener_evicted;
    obs::Histogram& batch_seconds;
    obs::Gauge& threads;
    obs::Gauge& screener_streams;
    obs::Gauge& screener_bytes;
};

ServeMetrics& serve_metrics() {
    auto& registry = obs::default_registry();
    static ServeMetrics metrics{
        registry.counter("hpr_serving_batches_total",
                         "Batch assessment requests served"),
        registry.counter("hpr_serving_batch_servers_total",
                         "Servers assessed through the batch path"),
        registry.counter("hpr_serving_incremental_observes_total",
                         "Feedbacks streamed into incremental screeners"),
        registry.counter("hpr_serving_incremental_shortcuts_total",
                         "Assessments answered from a standing screener state"),
        registry.counter("hpr_serving_screener_evicted_total",
                         "Screeners released by retention eviction"),
        registry.histogram("hpr_serving_batch_seconds",
                           "Whole-batch assessment latency"),
        registry.gauge("hpr_serving_threads",
                       "Executors (pool workers + caller) of a batch assessor"),
        registry.gauge("hpr_serving_screener_streams",
                       "Servers with a live incremental screener"),
        registry.gauge("hpr_serving_screener_bytes",
                       "Resident bytes of the incremental screener bank"),
    };
    return metrics;
}

std::size_t resolve_threads(std::size_t configured) {
    if (configured != 0) return configured;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Rough per-node overhead of the std::map the bank stores screeners in:
/// left/right/parent pointers, color, and the key.
constexpr std::size_t kStreamNodeOverhead =
    4 * sizeof(void*) + sizeof(repsys::EntityId);

}  // namespace

/// One lock stripe of the incremental screener bank.
struct BatchAssessor::ScreenerStripe {
    mutable std::mutex mutex;
    std::map<repsys::EntityId, core::OnlineScreener> screeners;
};

BatchAssessor::BatchAssessor(BatchAssessorConfig config,
                             std::shared_ptr<const repsys::TrustFunction> trust,
                             std::shared_ptr<stats::Calibrator> calibrator)
    : config_(config),
      assessor_(config.assessment, std::move(trust), std::move(calibrator)),
      threads_(resolve_threads(config.threads)),
      pool_(threads_ - 1) {
    if (config_.incremental) {
        const std::size_t stripes =
            config_.screener_stripes == 0 ? 1 : config_.screener_stripes;
        stripes_.reserve(stripes);
        for (std::size_t i = 0; i < stripes; ++i) {
            stripes_.push_back(std::make_unique<ScreenerStripe>());
        }
    }
    serve_metrics().threads.set(static_cast<std::int64_t>(threads_));
}

BatchAssessor::~BatchAssessor() = default;

BatchAssessor::ScreenerStripe& BatchAssessor::stripe_for(
    repsys::EntityId server) const {
    std::uint64_t state = static_cast<std::uint64_t>(server) + 0x9e3779b97f4a7c15ULL;
    return *stripes_[stats::splitmix64(state) % stripes_.size()];
}

void BatchAssessor::observe(const repsys::Feedback& feedback) {
    if (stripes_.empty()) return;
    ScreenerStripe& stripe = stripe_for(feedback.server);
    bool created = false;
    std::size_t created_bytes = 0;
    {
        const std::lock_guard<std::mutex> lock{stripe.mutex};
        auto it = stripe.screeners.find(feedback.server);
        if (it == stripe.screeners.end()) {
            core::OnlineScreenerConfig screener_config;
            screener_config.test = config_.assessment.test;
            screener_config.patience = config_.patience;
            screener_config.recovery = config_.recovery;
            screener_config.max_windows = config_.screener_horizon;
            it = stripe.screeners
                     .emplace(feedback.server,
                              core::OnlineScreener{screener_config,
                                                   assessor_.calibrator()})
                     .first;
            it->second.set_entity(feedback.server);
            created = true;
            created_bytes = it->second.memory_bytes() + kStreamNodeOverhead;
        }
        it->second.observe(feedback);
    }
    ServeMetrics& metrics = serve_metrics();
    metrics.observes.increment();
    if (created) {
        metrics.screener_streams.add(1);
        metrics.screener_bytes.add(static_cast<std::int64_t>(created_bytes));
    }
}

core::StreamState BatchAssessor::stream_state(repsys::EntityId server) const {
    if (stripes_.empty()) return core::StreamState::kInsufficient;
    const ScreenerStripe& stripe = stripe_for(server);
    const std::lock_guard<std::mutex> lock{stripe.mutex};
    const auto it = stripe.screeners.find(server);
    return it == stripe.screeners.end() ? core::StreamState::kInsufficient
                                        : it->second.state();
}

std::optional<BatchAssessor::StreamInfo> BatchAssessor::stream_info(
    repsys::EntityId server) const {
    if (stripes_.empty()) return std::nullopt;
    const ScreenerStripe& stripe = stripe_for(server);
    const std::lock_guard<std::mutex> lock{stripe.mutex};
    const auto it = stripe.screeners.find(server);
    if (it == stripe.screeners.end()) return std::nullopt;
    const core::OnlineScreener& screener = it->second;
    StreamInfo info;
    info.state = screener.state();
    info.transactions = screener.transactions();
    info.windows = screener.windows();
    info.retained_windows = screener.retained_windows();
    info.horizon = screener.horizon();
    info.evaluations = screener.evaluations();
    info.failing_streak = screener.failing_streak();
    info.passing_streak = screener.passing_streak();
    info.p_hat = screener.p_hat();
    info.memory_bytes = screener.memory_bytes();
    return info;
}

std::size_t BatchAssessor::drop_streams(std::span<const repsys::EntityId> servers) {
    if (stripes_.empty()) return 0;
    std::size_t dropped = 0;
    std::size_t released_bytes = 0;
    for (const repsys::EntityId server : servers) {
        ScreenerStripe& stripe = stripe_for(server);
        const std::lock_guard<std::mutex> lock{stripe.mutex};
        const auto it = stripe.screeners.find(server);
        if (it == stripe.screeners.end()) continue;
        released_bytes += it->second.memory_bytes() + kStreamNodeOverhead;
        stripe.screeners.erase(it);
        ++dropped;
    }
    if (dropped > 0) {
        ServeMetrics& metrics = serve_metrics();
        metrics.screener_evicted.increment(dropped);
        metrics.screener_streams.add(-static_cast<std::int64_t>(dropped));
        metrics.screener_bytes.add(-static_cast<std::int64_t>(released_bytes));
    }
    return dropped;
}

std::size_t BatchAssessor::evict_streams(const repsys::FeedbackStore& store) {
    if (stripes_.empty()) return 0;
    std::vector<repsys::EntityId> stale;
    for (const auto& stripe : stripes_) {
        const std::lock_guard<std::mutex> lock{stripe->mutex};
        for (const auto& [server, screener] : stripe->screeners) {
            if (!store.contains(server)) stale.push_back(server);
        }
    }
    return drop_streams(stale);
}

std::size_t BatchAssessor::tracked_streams() const {
    std::size_t total = 0;
    for (const auto& stripe : stripes_) {
        const std::lock_guard<std::mutex> lock{stripe->mutex};
        total += stripe->screeners.size();
    }
    return total;
}

std::size_t BatchAssessor::stream_memory_bytes() const {
    std::size_t total = 0;
    for (const auto& stripe : stripes_) {
        const std::lock_guard<std::mutex> lock{stripe->mutex};
        for (const auto& [server, screener] : stripe->screeners) {
            total += screener.memory_bytes() + kStreamNodeOverhead;
        }
    }
    serve_metrics().screener_bytes.set(static_cast<std::int64_t>(total));
    return total;
}

core::Assessment BatchAssessor::assess_one(const repsys::FeedbackStore& store,
                                           repsys::EntityId server,
                                           bool use_streams) const {
    if (use_streams && config_.incremental) {
        // The standing screener state replaces the O(n) phase-1 rescan
        // once the stream has been judged at least once; insufficient
        // streams fall through to the full scan below.
        switch (stream_state(server)) {
            case core::StreamState::kSuspicious: {
                serve_metrics().shortcuts.increment();
                core::Assessment assessment;
                assessment.verdict = core::Verdict::kSuspicious;
                assessment.screening.passed = false;
                assessment.screening.sufficient = true;
                return assessment;
            }
            case core::StreamState::kClear: {
                serve_metrics().shortcuts.increment();
                core::Assessment assessment;
                assessment.verdict = core::Verdict::kAssessed;
                assessment.screening.passed = true;
                assessment.screening.sufficient = true;
                assessment.trust =
                    assessor_.trust_function().evaluate(
                        store.history_snapshot(server).view());
                return assessment;
            }
            case core::StreamState::kInsufficient: break;
        }
    }
    return assessor_.assess(store.history_snapshot(server));
}

std::vector<ServerAssessment> BatchAssessor::assess_impl(
    const repsys::FeedbackStore& store,
    const std::vector<repsys::EntityId>& servers, bool use_streams) const {
    ServeMetrics& metrics = serve_metrics();
    metrics.batches.increment();
    metrics.batch_servers.increment(servers.size());
    std::vector<ServerAssessment> results(servers.size());
    const obs::ScopedTimer timer{metrics.batch_seconds};
    // Each pool worker screens with its own thread-local scratch arena
    // (core/scratch.h) and the shared reference-model cache configured on
    // config_.assessment.test.base, so steady-state screening neither
    // allocates nor rebuilds Binomial tables — see docs/scaling.md
    // ("Assessment hot path").
    pool_.parallel_for(servers.size(), [&](std::size_t i) {
        results[i].server = servers[i];
        results[i].assessment = assess_one(store, servers[i], use_streams);
    });
    return results;
}

std::vector<ServerAssessment> BatchAssessor::assess(
    const repsys::FeedbackStore& store,
    const std::vector<repsys::EntityId>& servers) const {
    return assess_impl(store, servers, /*use_streams=*/true);
}

std::vector<ServerAssessment> BatchAssessor::assess_batch(
    const repsys::FeedbackStore& store,
    const std::vector<repsys::EntityId>& servers) const {
    return assess_impl(store, servers, /*use_streams=*/false);
}

std::vector<ServerAssessment> BatchAssessor::assess_all(
    const repsys::FeedbackStore& store) const {
    return assess(store, store.servers());
}

}  // namespace hpr::serve
