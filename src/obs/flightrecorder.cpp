#include "obs/flightrecorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "obs/buildinfo.h"
#include "obs/export.h"
#include "obs/timer.h"

namespace hpr::obs {

namespace {

std::string format_double(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.12g", value);
    return buffer;
}

double wall_seconds() {
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/// Previous cumulative value of `name` in a name-sorted vector.
template <typename T>
const T* find_previous(const std::vector<std::pair<std::string, T>>& previous,
                       std::string_view name) {
    const auto it = std::lower_bound(
        previous.begin(), previous.end(), name,
        [](const auto& entry, std::string_view key) { return entry.first < key; });
    if (it == previous.end() || it->first != name) return nullptr;
    return &it->second;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config, Registry& registry)
    : config_(config),
      registry_(registry),
      samples_metric_(registry.counter(
          "hpr_flightrecorder_samples_total",
          "Registry snapshots taken by the flight recorder")),
      retained_metric_(registry.gauge(
          "hpr_flightrecorder_snapshots",
          "Snapshots currently retained in the flight-recorder ring")),
      sample_seconds_metric_(registry.histogram(
          "hpr_flightrecorder_sample_seconds",
          "Wall time of one flight-recorder sampling pass")) {
    if (!(config_.interval_seconds > 0.0)) {
        throw std::invalid_argument(
            "FlightRecorder: interval_seconds must be positive");
    }
    if (config_.capacity == 0) {
        throw std::invalid_argument("FlightRecorder: capacity must be nonzero");
    }
    ring_.resize(config_.capacity);
}

FlightRecorder::~FlightRecorder() { stop(); }

void FlightRecorder::set_on_sample(
    std::function<void(const FlightRecorder&, const RecorderSnapshot&)> hook) {
    std::lock_guard<std::mutex> lock{tick_mutex_};
    hook_ = std::move(hook);
}

void FlightRecorder::start() {
    if (running()) throw std::runtime_error("FlightRecorder: already running");
    {
        std::lock_guard<std::mutex> lock{wake_mutex_};
        stop_requested_ = false;
    }
    running_.store(true, std::memory_order_release);
    sampler_ = std::thread([this] { run_loop(); });
}

void FlightRecorder::stop() {
    {
        std::lock_guard<std::mutex> lock{wake_mutex_};
        stop_requested_ = true;
    }
    wake_.notify_all();
    if (sampler_.joinable()) sampler_.join();
    running_.store(false, std::memory_order_release);
}

void FlightRecorder::run_loop() {
    const auto interval = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(config_.interval_seconds));
    for (;;) {
        (void)sample_now();
        std::unique_lock<std::mutex> lock{wake_mutex_};
        if (wake_.wait_for(lock, interval, [this] { return stop_requested_; })) {
            return;
        }
    }
}

RecorderSnapshot FlightRecorder::build_snapshot() {
    RecorderSnapshot snapshot;
    snapshot.wall_time = wall_seconds();
    snapshot.uptime_seconds = uptime_seconds();
    snapshot.interval_seconds =
        prev_uptime_ < 0.0 ? 0.0 : snapshot.uptime_seconds - prev_uptime_;

    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
    registry_.visit([&](const Registry::Entry& entry) {
        MetricPoint point;
        point.kind = entry.kind;
        switch (entry.kind) {
            case MetricKind::kCounter: {
                point.value = entry.counter->value();
                const std::uint64_t* previous =
                    find_previous(prev_counters_, entry.name);
                // First sight of a metric contributes no delta: a rate
                // spike out of nowhere would be an artifact of lazy
                // registration, not of traffic.
                point.delta = previous != nullptr && point.value >= *previous
                                  ? point.value - *previous
                                  : 0;
                counters.emplace_back(entry.name, point.value);
                break;
            }
            case MetricKind::kGauge:
                point.level = entry.gauge->value();
                break;
            case MetricKind::kHistogram: {
                HistogramSnapshot current = entry.histogram->snapshot();
                point.count = current.count;
                const HistogramSnapshot* previous =
                    find_previous(prev_histograms_, entry.name);
                if (previous != nullptr && previous->count <= current.count &&
                    previous->counts.size() == current.counts.size()) {
                    // Per-interval distribution: the bucket-count deltas
                    // between consecutive cumulative snapshots ARE the
                    // histogram of this interval's observations, so the
                    // standard bucket interpolation yields interval
                    // quantiles.  Racing writers can skew one bucket by
                    // an observation or two — fine for monitoring.
                    HistogramSnapshot delta;
                    delta.bounds = current.bounds;
                    delta.counts.resize(current.counts.size());
                    for (std::size_t b = 0; b < current.counts.size(); ++b) {
                        delta.counts[b] =
                            current.counts[b] >= previous->counts[b]
                                ? current.counts[b] - previous->counts[b]
                                : 0;
                    }
                    delta.count = current.count - previous->count;
                    delta.sum = current.sum - previous->sum;
                    point.interval_count = delta.count;
                    point.interval_sum = delta.sum;
                    if (delta.count > 0) {
                        point.p50 = delta.quantile(0.50);
                        point.p95 = delta.quantile(0.95);
                        point.p99 = delta.quantile(0.99);
                    }
                }
                histograms.emplace_back(entry.name, std::move(current));
                break;
            }
        }
        snapshot.points.emplace_back(entry.name, point);
    });
    prev_counters_ = std::move(counters);
    prev_histograms_ = std::move(histograms);
    prev_uptime_ = snapshot.uptime_seconds;
    return snapshot;
}

RecorderSnapshot FlightRecorder::sample_now() {
    std::function<void(const FlightRecorder&, const RecorderSnapshot&)> hook;
    RecorderSnapshot snapshot;
    {
        std::lock_guard<std::mutex> tick{tick_mutex_};
        const Stopwatch watch;
        snapshot = build_snapshot();
        snapshot.sequence = sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
        {
            std::lock_guard<std::mutex> lock{ring_mutex_};
            const std::size_t slot = (head_ + size_) % config_.capacity;
            ring_[slot] = snapshot;
            if (size_ < config_.capacity) {
                ++size_;
            } else {
                head_ = (head_ + 1) % config_.capacity;
            }
        }
        samples_metric_.increment();
        retained_metric_.set(static_cast<std::int64_t>(size()));
        sample_seconds_metric_.observe(watch.seconds());
        hook = hook_;
    }
    if (hook) hook(*this, snapshot);
    return snapshot;
}

std::vector<RecorderSnapshot> FlightRecorder::snapshots(
    std::size_t newest_n) const {
    std::lock_guard<std::mutex> lock{ring_mutex_};
    const std::size_t n = newest_n < size_ ? newest_n : size_;
    std::vector<RecorderSnapshot> out;
    out.reserve(n);
    for (std::size_t i = size_ - n; i < size_; ++i) {
        out.push_back(ring_[(head_ + i) % config_.capacity]);
    }
    return out;
}

std::vector<SeriesPoint> FlightRecorder::series(std::string_view metric,
                                                std::size_t newest_n) const {
    std::lock_guard<std::mutex> lock{ring_mutex_};
    std::vector<SeriesPoint> out;
    const std::size_t n = newest_n < size_ ? newest_n : size_;
    for (std::size_t i = size_ - n; i < size_; ++i) {
        const RecorderSnapshot& snapshot = ring_[(head_ + i) % config_.capacity];
        const auto it = std::lower_bound(
            snapshot.points.begin(), snapshot.points.end(), metric,
            [](const auto& entry, std::string_view key) {
                return entry.first < key;
            });
        if (it == snapshot.points.end() || it->first != metric) continue;
        SeriesPoint point;
        point.sequence = snapshot.sequence;
        point.wall_time = snapshot.wall_time;
        point.interval_seconds = snapshot.interval_seconds;
        point.point = it->second;
        out.push_back(point);
    }
    return out;
}

std::vector<std::pair<std::string, MetricKind>> FlightRecorder::metric_names()
    const {
    std::lock_guard<std::mutex> lock{ring_mutex_};
    std::vector<std::pair<std::string, MetricKind>> out;
    if (size_ == 0) return out;
    const RecorderSnapshot& newest =
        ring_[(head_ + size_ - 1) % config_.capacity];
    out.reserve(newest.points.size());
    for (const auto& [name, point] : newest.points) {
        out.emplace_back(name, point.kind);
    }
    return out;
}

std::size_t FlightRecorder::size() const {
    std::lock_guard<std::mutex> lock{ring_mutex_};
    return size_;
}

std::string to_frame(const RecorderSnapshot& snapshot) {
    std::string out = "{\"type\":\"snapshot\",\"seq\":";
    out += std::to_string(snapshot.sequence);
    out += ",\"wall_time\":";
    out += format_double(snapshot.wall_time);
    out += ",\"uptime\":";
    out += format_double(snapshot.uptime_seconds);
    out += ",\"interval\":";
    out += format_double(snapshot.interval_seconds);
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, point] : snapshot.points) {
        if (point.kind != MetricKind::kCounter) continue;
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape_json(name);
        out += "\":{\"value\":";
        out += std::to_string(point.value);
        out += ",\"delta\":";
        out += std::to_string(point.delta);
        out += '}';
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, point] : snapshot.points) {
        if (point.kind != MetricKind::kGauge) continue;
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape_json(name);
        out += "\":";
        out += std::to_string(point.level);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, point] : snapshot.points) {
        if (point.kind != MetricKind::kHistogram) continue;
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape_json(name);
        out += "\":{\"count\":";
        out += std::to_string(point.count);
        out += ",\"interval_count\":";
        out += std::to_string(point.interval_count);
        out += ",\"interval_sum\":";
        out += format_double(point.interval_sum);
        out += ",\"p50\":";
        out += format_double(point.p50);
        out += ",\"p95\":";
        out += format_double(point.p95);
        out += ",\"p99\":";
        out += format_double(point.p99);
        out += '}';
    }
    out += "}}";
    return out;
}

// ---------------------------------------------------------------------------
// BlackBox
//
// All state the signal handler touches is file-scope and lock-free.  The
// staging protocol is a crash-tolerant double buffer:
//
//   * publish() writes the NON-stable slot, then flips g_stable to it
//     (release store).  A slot therefore only becomes stable after it is
//     completely serialized, and is only rewritten after stability moved
//     to the other slot — at least one full publish (>= one recorder
//     interval) later.
//   * the handler sets g_crashing FIRST, then reads g_stable once
//     (acquire) and write(2)s that slot.  publish() checks g_crashing at
//     entry and before the flip/free, so no publish that starts after
//     the crash touches anything, and the one publish that may already
//     be in flight only ever writes the slot the handler is NOT reading.
//
// The handler itself uses only async-signal-safe calls: write, ftruncate,
// fsync, sigaction, raise.

namespace {

struct BlackBoxSlot {
    std::atomic<char*> data{nullptr};
    std::atomic<std::size_t> size{0};
    std::size_t capacity = 0;  ///< touched only by publish()
};

constexpr int kBlackBoxSignals[] = {SIGSEGV, SIGABRT, SIGBUS};
constexpr std::size_t kBlackBoxSignalCount = 3;

BlackBoxSlot g_slots[2];
std::atomic<int> g_stable{-1};  ///< index of the fully serialized slot, -1 none
std::atomic<int> g_blackbox_fd{-1};
std::atomic<bool> g_crashing{false};
std::atomic<bool> g_armed{false};
std::atomic<std::size_t> g_staged_bytes{0};
std::atomic<std::uint64_t> g_publishes{0};
char g_crash_frames[kBlackBoxSignalCount][96];
std::size_t g_crash_frame_len[kBlackBoxSignalCount] = {0, 0, 0};
struct sigaction g_previous_actions[kBlackBoxSignalCount];

void write_fully(int fd, const char* data, std::size_t n) {
    while (n > 0) {
        const ssize_t written = ::write(fd, data, n);
        if (written < 0) {
            if (errno == EINTR) continue;
            return;  // nothing more a dying handler can do
        }
        data += written;
        n -= static_cast<std::size_t>(written);
    }
}

int signal_index(int sig) {
    for (std::size_t i = 0; i < kBlackBoxSignalCount; ++i) {
        if (kBlackBoxSignals[i] == sig) return static_cast<int>(i);
    }
    return -1;
}

void blackbox_handler(int sig) {
    const bool already_crashing =
        g_crashing.exchange(true, std::memory_order_acq_rel);
    const int fd = g_blackbox_fd.load(std::memory_order_acquire);
    if (fd >= 0 && !already_crashing) {
        std::size_t total = 0;
        const int stable = g_stable.load(std::memory_order_acquire);
        if (stable >= 0) {
            const char* data =
                g_slots[stable].data.load(std::memory_order_acquire);
            const std::size_t n =
                g_slots[stable].size.load(std::memory_order_acquire);
            if (data != nullptr && n > 0) {
                write_fully(fd, data, n);
                total += n;
            }
        }
        const int index = signal_index(sig);
        if (index >= 0 && g_crash_frame_len[index] > 0) {
            write_fully(fd, g_crash_frames[index], g_crash_frame_len[index]);
            total += g_crash_frame_len[index];
        }
        // Trim the pre-sized reservation down to the bytes actually
        // dumped, then push them to disk before the process dies.
        [[maybe_unused]] const int trimmed =
            ::ftruncate(fd, static_cast<off_t>(total));
        ::fsync(fd);
    }
    // Re-raise with the default disposition so the exit status (and any
    // core dump policy) is exactly what an unhandled crash produces.
    struct sigaction dfl {};
    dfl.sa_handler = SIG_DFL;
    ::sigemptyset(&dfl.sa_mask);
    ::sigaction(sig, &dfl, nullptr);
    ::raise(sig);
}

const char* signal_name(int sig) {
    switch (sig) {
        case SIGSEGV: return "SIGSEGV";
        case SIGABRT: return "SIGABRT";
        case SIGBUS: return "SIGBUS";
        default: return "UNKNOWN";
    }
}

}  // namespace

BlackBox& BlackBox::instance() {
    static BlackBox box;
    return box;
}

bool BlackBox::arm(const std::string& path, std::size_t presize_bytes) {
    disarm();
    const int fd =
        ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
    if (fd < 0) return false;
    if (presize_bytes > 0) {
        // Reserve the space up front so the crash-time write cannot hit
        // ENOSPC; ftruncate (sparse) is the fallback when the filesystem
        // has no real reservation.
        if (::posix_fallocate(fd, 0, static_cast<off_t>(presize_bytes)) != 0) {
            [[maybe_unused]] const int sized =
                ::ftruncate(fd, static_cast<off_t>(presize_bytes));
        }
    }
    for (std::size_t i = 0; i < kBlackBoxSignalCount; ++i) {
        const int written = std::snprintf(
            g_crash_frames[i], sizeof g_crash_frames[i],
            "{\"type\":\"crash\",\"signal\":%d,\"name\":\"%s\"}\n",
            kBlackBoxSignals[i], signal_name(kBlackBoxSignals[i]));
        g_crash_frame_len[i] =
            written > 0 ? static_cast<std::size_t>(written) : 0;
    }
    g_slots[0].size.store(0, std::memory_order_release);
    g_slots[1].size.store(0, std::memory_order_release);
    g_stable.store(-1, std::memory_order_release);
    g_staged_bytes.store(0, std::memory_order_relaxed);
    g_crashing.store(false, std::memory_order_release);
    g_blackbox_fd.store(fd, std::memory_order_release);

    struct sigaction action {};
    action.sa_handler = blackbox_handler;
    ::sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    for (std::size_t i = 0; i < kBlackBoxSignalCount; ++i) {
        ::sigaction(kBlackBoxSignals[i], &action, &g_previous_actions[i]);
    }
    g_armed.store(true, std::memory_order_release);
    return true;
}

void BlackBox::disarm() {
    if (!g_armed.exchange(false, std::memory_order_acq_rel)) return;
    for (std::size_t i = 0; i < kBlackBoxSignalCount; ++i) {
        ::sigaction(kBlackBoxSignals[i], &g_previous_actions[i], nullptr);
    }
    const int fd = g_blackbox_fd.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
        // An empty file is the "process exited cleanly" marker — the
        // pre-size padding would otherwise read as a truncated dump.
        [[maybe_unused]] const int trimmed = ::ftruncate(fd, 0);
        ::close(fd);
    }
    g_stable.store(-1, std::memory_order_release);
    g_staged_bytes.store(0, std::memory_order_relaxed);
    g_crashing.store(false, std::memory_order_release);
}

bool BlackBox::armed() const noexcept {
    return g_armed.load(std::memory_order_acquire);
}

void BlackBox::publish(std::string_view frames) {
    if (!armed() || g_crashing.load(std::memory_order_acquire)) return;
    const int stable = g_stable.load(std::memory_order_acquire);
    const int target = stable == 0 ? 1 : 0;
    BlackBoxSlot& slot = g_slots[target];
    if (slot.capacity < frames.size()) {
        const std::size_t grown_capacity = frames.size() + frames.size() / 2;
        char* grown = new char[grown_capacity];
        if (g_crashing.load(std::memory_order_acquire)) {
            delete[] grown;
            return;
        }
        char* old = slot.data.load(std::memory_order_relaxed);
        slot.size.store(0, std::memory_order_release);
        slot.data.store(grown, std::memory_order_release);
        slot.capacity = grown_capacity;
        delete[] old;
    }
    std::memcpy(slot.data.load(std::memory_order_relaxed), frames.data(),
                frames.size());
    slot.size.store(frames.size(), std::memory_order_release);
    if (g_crashing.load(std::memory_order_acquire)) return;
    g_stable.store(target, std::memory_order_release);
    g_staged_bytes.store(frames.size(), std::memory_order_relaxed);
    g_publishes.fetch_add(1, std::memory_order_relaxed);
}

std::size_t BlackBox::staged_bytes() const noexcept {
    return g_staged_bytes.load(std::memory_order_relaxed);
}

std::uint64_t BlackBox::publishes() const noexcept {
    return g_publishes.load(std::memory_order_relaxed);
}

}  // namespace hpr::obs
