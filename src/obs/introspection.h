#ifndef HPR_OBS_INTROSPECTION_H
#define HPR_OBS_INTROSPECTION_H

/// \file introspection.h
/// A browsable path hierarchy over live process state.
///
/// Every observability surface the library grew — the metrics registry,
/// the exporters, the decision-trace ring, the serving layer's screener
/// bank — was until now only reachable as an end-of-run dump.  A
/// long-running daemon needs the procstat idea instead: internal state
/// exposed as a *tree of named nodes* that standard text tools can walk
/// (`curl | grep`), each node rendering a greppable point-in-time page.
///
/// IntrospectionTree is that tree, kept deliberately transport-agnostic:
/// it maps a path (plus an optional query string) onto a page, and the
/// HTTP front-end (net/http_server.h) or a test harness calls `get()`
/// directly.  Nodes come in two shapes:
///
///  * exact nodes (`add`)        — one path, one handler ("/metrics");
///  * subtree nodes (`add_prefix`) — a handler owning every path at or
///    below a prefix ("/servers" also answers "/servers/17"; the handler
///    sees the full requested path and parses the remainder itself).
///
/// Paths with no handler but registered descendants render an automatic
/// directory listing (one `path  content-type  summary` row per child),
/// and `/` lists the whole tree — the "browsable" half of the contract.
///
/// Thread safety: registration and lookup are guarded by a shared mutex
/// (register once at startup, then any number of concurrent readers).
/// Handlers must themselves be safe to call from the serving thread
/// while the process mutates the underlying state — every built-in
/// source (Registry, TraceRing, FeedbackStore snapshots, the screener
/// bank) already is.  A handler that throws renders as a 500 page
/// instead of taking the daemon down.

#include <functional>
#include <map>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hpr::obs {

/// One resolved introspection request: the normalized path and the raw
/// query string (everything after `?`, not percent-decoded — every
/// built-in parameter is a plain integer).
struct IntrospectionRequest {
    std::string path;   ///< starts with '/', no trailing slash (except "/")
    std::string query;  ///< raw query string, possibly empty

    /// Value of `key` in a `k1=v1&k2=v2` query string; std::nullopt when
    /// absent, "" for a bare `key` or `key=`.
    [[nodiscard]] std::optional<std::string> param(std::string_view key) const;
};

/// One rendered page.
struct IntrospectionPage {
    int status = 200;  ///< HTTP-shaped status code (200/404/500)
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
};

using IntrospectionHandler =
    std::function<IntrospectionPage(const IntrospectionRequest&)>;

/// The browsable tree: path -> handler, with automatic directory
/// listings at interior paths and "/".
class IntrospectionTree {
public:
    /// Register an exact node.  `summary` is the one-line description
    /// directory listings show; `content_type` is advisory (listings
    /// print it; the handler's page carries the authoritative one).
    /// \throws std::invalid_argument on a malformed or duplicate path.
    void add(std::string path, std::string content_type, std::string summary,
             IntrospectionHandler handler);

    /// Register a subtree node: the handler answers `path` itself and
    /// every path below it (it receives the full requested path).
    /// \throws std::invalid_argument on a malformed or duplicate path.
    void add_prefix(std::string path, std::string content_type,
                    std::string summary, IntrospectionHandler handler);

    /// Resolve `target` ("/path" or "/path?query") to a page: exact
    /// node, else deepest enclosing subtree node, else a directory
    /// listing when registered paths live below `target`, else 404.
    /// Handler exceptions render as a 500 page.
    [[nodiscard]] IntrospectionPage get(std::string_view target) const;

    /// One registered node, for listings and tests.
    struct NodeInfo {
        std::string path;
        std::string content_type;
        std::string summary;
        bool subtree = false;
    };

    /// Every registered node in path order.
    [[nodiscard]] std::vector<NodeInfo> nodes() const;

    [[nodiscard]] std::size_t size() const;

private:
    struct Node {
        std::string content_type;
        std::string summary;
        IntrospectionHandler handler;
        bool subtree = false;
    };

    void insert(std::string path, std::string content_type, std::string summary,
                IntrospectionHandler handler, bool subtree);

    /// Directory listing of every node strictly below `prefix` (or the
    /// whole tree for "/"); 404 when nothing lives there.
    [[nodiscard]] IntrospectionPage listing(std::string_view prefix) const;

    mutable std::shared_mutex mutex_;
    std::map<std::string, Node, std::less<>> nodes_;
};

}  // namespace hpr::obs

#endif  // HPR_OBS_INTROSPECTION_H
