#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace hpr::obs {

namespace {

/// Shortest round-trip formatting for doubles (printf %.17g is exact but
/// ugly; %g at 12 significant digits is plenty for metric readout).
std::string format_double(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.12g", value);
    return buffer;
}

void append_prometheus_histogram(std::ostringstream& out, const Registry::Entry& entry) {
    const std::string name = escape_prometheus(entry.name);
    const HistogramSnapshot snap = entry.histogram->snapshot();
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
        cumulative += snap.counts[b];
        const std::string le =
            b < snap.bounds.size() ? format_double(snap.bounds[b]) : "+Inf";
        out << name << "_bucket{le=\"" << le << "\"} " << cumulative << '\n';
    }
    out << name << "_sum " << format_double(snap.sum) << '\n';
    out << name << "_count " << snap.count << '\n';
}

void json_escape_into(std::ostringstream& out, std::string_view text) {
    out << escape_json(text);
}

/// Prometheus label-VALUE escaping (the exposition format escapes label
/// values differently from help text: backslash, double-quote, newline).
std::string escape_prometheus_label(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '"': out += "\\\""; break;
            case '\n': out += "\\n"; break;
            default: out += c; break;
        }
    }
    return out;
}

/// `{key="value",...}` suffix of a labeled sample line; empty when the
/// metric carries no labels.
std::string prometheus_label_suffix(const Registry::LabelSet& labels) {
    if (labels.empty()) return {};
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i != 0) out += ',';
        out += escape_prometheus(labels[i].first);
        out += "=\"";
        out += escape_prometheus_label(labels[i].second);
        out += '"';
    }
    out += '}';
    return out;
}

}  // namespace

std::string escape_prometheus(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            default: out += c; break;
        }
    }
    return out;
}

std::string escape_json(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof buffer, "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buffer;
                } else {
                    out += c;
                }
                break;
        }
    }
    return out;
}

std::string to_prometheus(const Registry& registry) {
    std::ostringstream out;
    registry.visit([&out](const Registry::Entry& entry) {
        // Registry::valid_name rejects anything outside
        // [a-zA-Z_][a-zA-Z0-9_]*, but escape anyway: exposition is
        // line-oriented, and an embedded newline (however it got there)
        // would otherwise inject arbitrary sample lines into the scrape.
        const std::string name = escape_prometheus(entry.name);
        if (!entry.help.empty()) {
            out << "# HELP " << name << ' ' << escape_prometheus(entry.help) << '\n';
        }
        out << "# TYPE " << name << ' ' << to_string(entry.kind) << '\n';
        switch (entry.kind) {
            case MetricKind::kCounter:
                out << name << ' ' << entry.counter->value() << '\n';
                break;
            case MetricKind::kGauge:
                out << name << prometheus_label_suffix(entry.labels) << ' '
                    << entry.gauge->value() << '\n';
                break;
            case MetricKind::kHistogram:
                append_prometheus_histogram(out, entry);
                break;
        }
    });
    return out.str();
}

std::string to_json(const Registry& registry) {
    std::ostringstream counters;
    std::ostringstream gauges;
    std::ostringstream histograms;
    bool first_counter = true;
    bool first_gauge = true;
    bool first_histogram = true;
    registry.visit([&](const Registry::Entry& entry) {
        switch (entry.kind) {
            case MetricKind::kCounter: {
                if (!first_counter) counters << ',';
                first_counter = false;
                counters << '"';
                json_escape_into(counters, entry.name);
                counters << "\":" << entry.counter->value();
                break;
            }
            case MetricKind::kGauge: {
                if (!first_gauge) gauges << ',';
                first_gauge = false;
                gauges << '"';
                json_escape_into(gauges, entry.name);
                if (entry.labels.empty()) {
                    gauges << "\":" << entry.gauge->value();
                } else {
                    // Info gauges keep their labels machine-readable:
                    // {"value": v, "labels": {...}} instead of a bare v.
                    gauges << "\":{\"value\":" << entry.gauge->value()
                           << ",\"labels\":{";
                    for (std::size_t i = 0; i < entry.labels.size(); ++i) {
                        if (i != 0) gauges << ',';
                        gauges << '"';
                        json_escape_into(gauges, entry.labels[i].first);
                        gauges << "\":\"";
                        json_escape_into(gauges, entry.labels[i].second);
                        gauges << '"';
                    }
                    gauges << "}}";
                }
                break;
            }
            case MetricKind::kHistogram: {
                if (!first_histogram) histograms << ',';
                first_histogram = false;
                const HistogramSnapshot snap = entry.histogram->snapshot();
                histograms << '"';
                json_escape_into(histograms, entry.name);
                histograms << "\":{\"count\":" << snap.count
                           << ",\"sum\":" << format_double(snap.sum)
                           << ",\"mean\":" << format_double(snap.mean())
                           << ",\"p50\":" << format_double(snap.quantile(0.50))
                           << ",\"p95\":" << format_double(snap.quantile(0.95))
                           << ",\"p99\":" << format_double(snap.quantile(0.99))
                           << ",\"buckets\":[";
                std::uint64_t cumulative = 0;
                for (std::size_t b = 0; b < snap.counts.size(); ++b) {
                    cumulative += snap.counts[b];
                    if (b != 0) histograms << ',';
                    histograms << "[\""
                               << (b < snap.bounds.size()
                                       ? format_double(snap.bounds[b])
                                       : std::string{"+Inf"})
                               << "\"," << cumulative << ']';
                }
                histograms << "]}";
                break;
            }
        }
    });
    std::ostringstream out;
    out << "{\"counters\":{" << counters.str() << "},\"gauges\":{" << gauges.str()
        << "},\"histograms\":{" << histograms.str() << "}}";
    return out.str();
}

}  // namespace hpr::obs
