#ifndef HPR_OBS_FLIGHTRECORDER_H
#define HPR_OBS_FLIGHTRECORDER_H

/// \file flightrecorder.h
/// Temporal self-observation for the serving daemon: a flight recorder
/// that turns the registry's *instantaneous* metrics into a bounded
/// in-memory time series, and a crash black-box that preserves the
/// final seconds of that telemetry when the process dies.
///
/// `/metrics` is a point-in-time scrape: it can say the daemon is slow
/// *now*, but not when it started degrading, and it says nothing at all
/// once the process is gone.  Two pieces close that gap:
///
///  * **FlightRecorder** — a sampler thread snapshots a Registry on a
///    fixed cadence into a ring of `RecorderSnapshot`s.  Counters are
///    stored as cumulative value + per-interval delta (rates derive as
///    delta/interval), gauges as levels, histograms as cumulative count
///    plus *per-interval* count/sum/p50/p95/p99 computed from the
///    bucket-count deltas between consecutive samples — the registry's
///    histograms are cumulative-forever, so only the recorder can say
///    what the p99 of the LAST second was.  The ring is bounded
///    (capacity × metric count), oldest snapshot evicted first, so a
///    daemon that runs for months holds a fixed-size recent history.
///    Served live via `/timeseries?metric=&n=` (net/endpoints.h) and
///    consumed by the health watchdog (obs/watchdog.h).
///
///  * **BlackBox** — a pre-opened, pre-sized dump file plus handlers
///    for SIGSEGV/SIGABRT/SIGBUS.  The sampler thread *pre-serializes*
///    the forensic payload (recent snapshots, health verdict, trace
///    ring) into one of two staging buffers and atomically publishes
///    the completed one; the signal handler only `write(2)`s the stable
///    buffer, appends a pre-serialized crash frame, `ftruncate`s and
///    `fsync`s — every call on the async-signal-safe list — then
///    re-raises with the default disposition so the exit status still
///    tells the truth.  A post-mortem starts from the dump file instead
///    of from nothing (`scripts/validate_blackbox.py` checks the frame
///    schema; docs/observability.md has the triage runbook).
///
/// Cost model: sampling is one `Registry::visit` every
/// `interval_seconds` on a dedicated thread — the assessment hot path
/// never runs recorder code.  bench/flight_recorder measures the
/// steady-state interference and enforces a <2% budget on assess p99.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace hpr::obs {

/// One metric's contribution to one snapshot.  Which fields are
/// meaningful depends on `kind`; the others stay zero.
struct MetricPoint {
    MetricKind kind = MetricKind::kCounter;

    // kind == kCounter
    std::uint64_t value = 0;  ///< cumulative count at sample time
    std::uint64_t delta = 0;  ///< increase since the previous snapshot

    // kind == kGauge
    std::int64_t level = 0;

    // kind == kHistogram
    std::uint64_t count = 0;           ///< cumulative observations
    std::uint64_t interval_count = 0;  ///< observations in this interval
    double interval_sum = 0.0;         ///< sum of this interval's observations
    double p50 = 0.0;                  ///< interval quantiles (bucket-delta
    double p95 = 0.0;                  ///  interpolation; 0 when the interval
    double p99 = 0.0;                  ///  saw no observations)
};

/// One full-registry sample.
struct RecorderSnapshot {
    std::uint64_t sequence = 0;    ///< 1-based, monotone per recorder
    double wall_time = 0.0;        ///< seconds since the Unix epoch
    double uptime_seconds = 0.0;   ///< process uptime at sample time
    double interval_seconds = 0.0; ///< measured gap to the previous sample
    std::vector<std::pair<std::string, MetricPoint>> points;  ///< name order
};

/// One metric's value at one snapshot, for series queries.
struct SeriesPoint {
    std::uint64_t sequence = 0;
    double wall_time = 0.0;
    double interval_seconds = 0.0;
    MetricPoint point;
};

struct FlightRecorderConfig {
    /// Sampler cadence.  The watchdog's regression baselines and the
    /// black-box's "final seconds" resolution are both one snapshot per
    /// interval.
    /// \throws std::invalid_argument (from the constructor) unless > 0.
    double interval_seconds = 1.0;

    /// Snapshot ring bound; the oldest snapshot is evicted when full.
    /// \throws std::invalid_argument (from the constructor) if zero.
    std::size_t capacity = 256;
};

/// The sampler + ring.  Thread-safe: start/stop/sample_now from any
/// thread (ticks serialize on an internal mutex), readers
/// (snapshots/series/metric_names) never block the sampled registry.
class FlightRecorder {
public:
    explicit FlightRecorder(FlightRecorderConfig config = {},
                            Registry& registry = default_registry());

    /// Stops the sampler if still running.
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    /// Spawn the sampler thread (one tick immediately, then every
    /// interval).  \throws std::runtime_error if already started.
    void start();

    /// Stop and join the sampler thread.  Idempotent.
    void stop();

    [[nodiscard]] bool running() const noexcept {
        return running_.load(std::memory_order_acquire);
    }

    /// Take one sample synchronously (the sampler thread calls this;
    /// tests drive deterministic ticks through it without a thread).
    /// Returns a copy of the snapshot appended to the ring.
    RecorderSnapshot sample_now();

    /// Hook invoked after every tick (sampler thread or the sample_now
    /// caller), outside the ring lock — the watchdog evaluates and the
    /// black-box publishes from here.  Set before start().
    void set_on_sample(
        std::function<void(const FlightRecorder&, const RecorderSnapshot&)> hook);

    /// The newest `newest_n` snapshots (all retained when larger),
    /// oldest first.
    [[nodiscard]] std::vector<RecorderSnapshot> snapshots(
        std::size_t newest_n = SIZE_MAX) const;

    /// One metric's trajectory over the newest `newest_n` snapshots,
    /// oldest first.  Empty when the metric never appeared.
    [[nodiscard]] std::vector<SeriesPoint> series(
        std::string_view metric, std::size_t newest_n = SIZE_MAX) const;

    /// Metric names present in the newest snapshot (name order), with
    /// their kinds.  Empty before the first tick.
    [[nodiscard]] std::vector<std::pair<std::string, MetricKind>> metric_names()
        const;

    [[nodiscard]] std::size_t capacity() const noexcept {
        return config_.capacity;
    }
    [[nodiscard]] double interval_seconds() const noexcept {
        return config_.interval_seconds;
    }
    /// Retained snapshots (<= capacity).
    [[nodiscard]] std::size_t size() const;
    /// Lifetime ticks taken.
    [[nodiscard]] std::uint64_t samples_taken() const noexcept {
        return sequence_.load(std::memory_order_relaxed);
    }

private:
    void run_loop();
    RecorderSnapshot build_snapshot();

    FlightRecorderConfig config_;
    Registry& registry_;

    // Recorder self-telemetry, resolved once at construction so the
    // metric set a CI inventory sees is deterministic.
    Counter& samples_metric_;
    Gauge& retained_metric_;
    Histogram& sample_seconds_metric_;

    mutable std::mutex ring_mutex_;
    std::vector<RecorderSnapshot> ring_;  ///< ring_[.. head_) oldest-first
    std::size_t head_ = 0;                ///< index of the oldest snapshot
    std::size_t size_ = 0;

    std::mutex tick_mutex_;  ///< serializes ticks (prev_* state below)
    // Previous cumulative values, keyed by metric name — the delta and
    // interval-quantile inputs.  Touched only under tick_mutex_.
    std::vector<std::pair<std::string, std::uint64_t>> prev_counters_;
    std::vector<std::pair<std::string, HistogramSnapshot>> prev_histograms_;
    double prev_uptime_ = -1.0;  ///< < 0 before the first tick

    std::function<void(const FlightRecorder&, const RecorderSnapshot&)> hook_;

    std::thread sampler_;
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> sequence_{0};
    std::mutex wake_mutex_;
    std::condition_variable wake_;
    bool stop_requested_ = false;  ///< guarded by wake_mutex_
};

/// One-line JSON frame of a snapshot for the black-box file:
/// `{"type":"snapshot","seq":..,"wall_time":..,"uptime":..,"interval":..,
///   "counters":{name:{"value":..,"delta":..}},"gauges":{name:level},
///   "histograms":{name:{"count":..,"interval_count":..,"interval_sum":..,
///   "p50":..,"p95":..,"p99":..}}}` (no trailing newline).
[[nodiscard]] std::string to_frame(const RecorderSnapshot& snapshot);

/// The crash black-box.  One per process (the signal handler needs
/// global state); arm() installs handlers, publish() stages bytes,
/// the handlers dump and re-raise.
///
/// Concurrency contract: publish() is called from one thread at a time
/// (the recorder's on_sample hook).  The handler may fire on ANY thread
/// at ANY point; the double-buffer protocol guarantees it always reads
/// a completely serialized staging buffer (see flightrecorder.cpp).
class BlackBox {
public:
    /// The process-wide instance.
    [[nodiscard]] static BlackBox& instance();

    /// Open (create/truncate) and pre-size `path`, then install the
    /// SIGSEGV/SIGABRT/SIGBUS handlers.  Pre-sizing reserves the disk
    /// space up front so the crash-time write cannot fail on ENOSPC.
    /// \returns false (file untouched beyond a failed open) on error.
    [[nodiscard]] bool arm(const std::string& path,
                           std::size_t presize_bytes = std::size_t{1} << 20);

    /// Restore the previous signal dispositions, truncate the dump file
    /// to empty (no crash happened) and close it.  Idempotent.
    void disarm();

    [[nodiscard]] bool armed() const noexcept;

    /// Stage `frames` (newline-terminated lines, e.g. from
    /// obs::render_blackbox) as the bytes a crash would dump.  NOT
    /// async-signal-safe itself — call from the recorder hook, never
    /// from a handler.
    void publish(std::string_view frames);

    /// Bytes currently staged / lifetime publishes, for tests and the
    /// daemon's drain summary.
    [[nodiscard]] std::size_t staged_bytes() const noexcept;
    [[nodiscard]] std::uint64_t publishes() const noexcept;

private:
    BlackBox() = default;
};

}  // namespace hpr::obs

#endif  // HPR_OBS_FLIGHTRECORDER_H
