#ifndef HPR_OBS_TRACE_H
#define HPR_OBS_TRACE_H

/// \file trace.h
/// Decision tracing: per-assessment audit trails for the screening pipeline.
///
/// The paper's contribution is an *explainable* verdict — a server is
/// rejected because a specific suffix of its history failed the L1
/// distance test against B(m, p̂) at a calibrated ε, possibly after
/// collusion-aware reordering — yet a boolean verdict and aggregate
/// counters (obs/metrics.h) cannot answer "why was server S flagged at
/// time t?".  This header adds the missing evidence layer:
///
///  * DecisionRecord — the structured evidence behind one verdict: every
///    tested suffix length with its L1 distance vs ε, p̂, window size m,
///    a collusion-reorder permutation summary, the supplementary runs
///    test, the final trust value, and timing spans;
///  * TraceContext   — an RAII per-assessment context.  Instrumented code
///    deep in the call stack (the suffix ladder, the reorderer, the
///    calibrator) reaches the active context through a thread-local
///    pointer, so no signature in the screening pipeline changes;
///  * TraceSpan      — an RAII nested timing span recorded into the
///    active context (phase-1 ladder, per-stage distance evaluation,
///    collusion reordering, phase-2 trust, cold Monte-Carlo runs);
///  * TraceRing      — a bounded multi-producer ring the finished records
///    land in (oldest evicted first), drained by `reputation_server
///    --trace-dump` and by tests;
///  * Tracer         — ties the above together: trace-id allocation,
///    deterministic sampling, the ring, runtime knobs.
///
/// Cost model: tracing honors the process-wide obs kill switch — with
/// `obs::set_enabled(false)` every trace site reduces to one relaxed
/// atomic load and a predictable branch.  With obs enabled but the tracer
/// inactive (the default) a site additionally reads the tracer's enabled
/// flag or a thread-local pointer; only a *sampled* assessment pays for
/// record building (bench/obs_overhead measures all lanes and enforces a
/// combined metrics+tracing budget of <2% on the assessment hot path).
///
/// Records export as JSONL (one `to_jsonl` object per line) and parse
/// back with `from_jsonl`, which is what `examples/trace_query` uses to
/// reconstruct flagging forensics from a dump.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace hpr::obs {

/// Evidence of one suffix-ladder stage: the single behavior test applied
/// to the most recent `suffix_length` transactions.
struct StageEvidence {
    std::uint64_t suffix_length = 0;  ///< transactions in the tested suffix
    std::uint64_t windows = 0;        ///< complete windows k the stage saw
    double p_hat = 0.0;               ///< estimated trust value of the suffix
    double distance = 0.0;            ///< measured distribution distance d
    double epsilon = 0.0;             ///< calibrated threshold ε
    bool sufficient = false;          ///< enough windows to be meaningful
    bool passed = true;               ///< d <= ε (or insufficient evidence)

    /// Signed slack ε - d; negative when the stage failed.
    [[nodiscard]] double margin() const noexcept { return epsilon - distance; }

    friend bool operator==(const StageEvidence&, const StageEvidence&) = default;
};

/// Summary of the §4 issuer-reordering permutation applied before a
/// collusion-resilient test.
struct ReorderSummary {
    bool applied = false;
    std::uint64_t issuers = 0;        ///< distinct feedback issuers
    std::uint64_t largest_group = 0;  ///< feedbacks from the most frequent issuer
    double displaced_fraction = 0.0;  ///< fraction of positions the permutation moved

    friend bool operator==(const ReorderSummary&, const ReorderSummary&) = default;
};

/// Supplementary Wald-Wolfowitz runs-test evidence.
struct RunsEvidence {
    bool evaluated = false;
    bool passed = true;
    double z = 0.0;            ///< standardized runs statistic
    double z_threshold = 0.0;  ///< two-sided acceptance bound

    friend bool operator==(const RunsEvidence&, const RunsEvidence&) = default;
};

/// One completed timing span.  Spans are appended in *completion* order;
/// `depth` reconstructs the nesting (0 = outermost).
struct SpanRecord {
    std::string name;
    std::uint32_t depth = 0;
    double start_seconds = 0.0;     ///< offset from the trace start
    double duration_seconds = 0.0;

    friend bool operator==(const SpanRecord&, const SpanRecord&) = default;
};

/// The full audit trail behind one screening decision.
struct DecisionRecord {
    std::uint64_t trace_id = 0;
    std::string source;            ///< "two_phase" or "online_screener"
    std::uint64_t server = 0;      ///< subject entity (0 when unknown)
    double wall_time = 0.0;        ///< seconds since the Unix epoch at trace start
    std::string verdict;           ///< assessor verdict or screener stream state
    std::string transition;        ///< "flagged"/"recovered" on a state change, else empty
    std::optional<double> trust;   ///< phase-2 trust value, when one was produced
    std::string mode;              ///< screening mode ("none"/"single"/"multi")
    bool collusion_resilient = false;
    std::uint32_t window_size = 0;      ///< m
    std::uint64_t history_length = 0;   ///< transactions considered
    double p_hat = 0.0;                 ///< p̂ of the longest evaluated suffix
    double min_margin = 0.0;            ///< smallest ε - d across evaluated stages
    std::optional<StageEvidence> failed;  ///< shortest failing stage, if any
    ReorderSummary reorder;
    RunsEvidence runs;
    std::vector<StageEvidence> stages;  ///< shortest suffix first
    std::vector<SpanRecord> spans;
};

/// One-line JSON rendering of a record (no trailing newline).  Numbers
/// are printed with 17 significant digits so doubles round-trip exactly;
/// absent optionals (`trust`, `failed`) and unapplied sub-objects
/// (`reorder`, `runs`) are omitted.  docs/observability.md documents the
/// schema key by key.
[[nodiscard]] std::string to_jsonl(const DecisionRecord& record);

/// Parse a to_jsonl() line back into a record.  Unknown keys are skipped,
/// so the format can grow forward-compatibly.  \returns false (leaving
/// `out` unspecified) on malformed input.
[[nodiscard]] bool from_jsonl(std::string_view line, DecisionRecord& out);

/// Bounded multi-producer ring of finished decision records.  push() is a
/// short mutex-protected O(1) splice — tracing samples, so contention is
/// rare by construction; when full the *oldest* record is evicted.
class TraceRing {
public:
    /// \throws std::invalid_argument if capacity is zero.
    explicit TraceRing(std::size_t capacity);

    /// Append a record, evicting the oldest when the ring is full.
    void push(DecisionRecord&& record);

    /// Remove and return every retained record, oldest first.
    [[nodiscard]] std::vector<DecisionRecord> drain();

    /// Copy of every retained record, oldest first, WITHOUT removing
    /// them — the live `/traces` scrape (net/endpoints.h) reads the ring
    /// repeatedly and must not steal records from a later forensics
    /// drain.
    [[nodiscard]] std::vector<DecisionRecord> snapshot() const;

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::size_t size() const;

    /// Lifetime totals: records ever pushed / evicted by wrap-around.
    /// pushed() == evicted() + drained-so-far + size().
    [[nodiscard]] std::uint64_t pushed() const;
    [[nodiscard]] std::uint64_t evicted() const;

private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::vector<DecisionRecord> slots_;
    std::size_t head_ = 0;  ///< index of the oldest record
    std::size_t size_ = 0;
    std::uint64_t pushed_ = 0;
    std::uint64_t evicted_ = 0;
};

/// Tracer tuning knobs (fixed at construction except where noted).
struct TracerConfig {
    std::size_t ring_capacity = 256;

    /// Probability an assessment is traced, in [0, 1].  Runtime-settable
    /// via Tracer::set_sample_rate().
    double sample_rate = 1.0;

    /// Seed of the deterministic sampling decision: trace id `i` is
    /// sampled iff splitmix64(seed ^ i) falls under the rate threshold,
    /// so a fixed seed replays the same keep/drop sequence.
    std::uint64_t seed = 0x7261636574ULL;

    /// Master switch, runtime-settable.  Off by default: tracing is
    /// opt-in (`reputation_server --trace-dump/--trace-sample`, tests).
    bool enabled = false;

    /// Record a per-suffix-stage span ("phase1/stage") around every
    /// distance evaluation.  Off by default: on a long ladder the two
    /// clock reads per stage dominate the tracing cost.
    bool span_stages = false;
};

/// Trace-id allocation, sampling and record collection.  Thread-safe.
class Tracer {
public:
    explicit Tracer(TracerConfig config = {});

    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /// Master switch (relaxed atomic; honored on top of obs::enabled()).
    void set_enabled(bool enabled) noexcept;
    [[nodiscard]] bool active() const noexcept;

    /// Clamp to [0, 1] and apply to future sampling decisions.
    void set_sample_rate(double rate) noexcept;
    [[nodiscard]] double sample_rate() const noexcept;

    void set_span_stages(bool enabled) noexcept;
    [[nodiscard]] bool span_stages() const noexcept;

    /// Monotone per-tracer id sequence, starting at 1.
    [[nodiscard]] std::uint64_t next_trace_id() noexcept;

    /// Deterministic sampling decision for an id (pure function of the
    /// seed, the id and the current rate).
    [[nodiscard]] bool sampled(std::uint64_t trace_id) const noexcept;

    [[nodiscard]] TraceRing& ring() noexcept { return ring_; }
    [[nodiscard]] const TracerConfig& config() const noexcept { return config_; }

private:
    TracerConfig config_;
    std::atomic<bool> enabled_;
    std::atomic<bool> span_stages_;
    std::atomic<std::uint64_t> rate_threshold_;  ///< sample iff hash>>32 < this
    std::atomic<std::uint64_t> next_id_{1};
    TraceRing ring_;
};

/// The process-wide tracer every built-in instrumentation site records
/// into (leaked, like default_registry(), for static-destruction safety).
[[nodiscard]] Tracer& default_tracer();

/// RAII per-assessment trace.  Construction decides once whether this
/// assessment is traced (obs kill switch on, tracer active, id sampled);
/// when it is, the context registers itself in a thread-local slot that
/// nested instrumentation reaches via current(), and destruction commits
/// the finished record to the tracer's ring.  Unsampled contexts are
/// inert: no allocation, no clock read, no thread-local write.
///
/// Contexts nest per thread (the innermost wins current()); they must be
/// destroyed in reverse construction order, which RAII guarantees.
class TraceContext {
public:
    TraceContext(Tracer& tracer, std::uint64_t server, std::string_view source);
    ~TraceContext();

    TraceContext(const TraceContext&) = delete;
    TraceContext& operator=(const TraceContext&) = delete;

    /// The innermost sampled context on this thread, or nullptr when none
    /// is open or instrumentation is globally disabled.  The disabled
    /// path is one relaxed load + branch.
    [[nodiscard]] static TraceContext* current() noexcept;

    [[nodiscard]] bool recording() const noexcept { return record_.has_value(); }

    /// The record under construction; nullptr when not sampled.
    [[nodiscard]] DecisionRecord* record() noexcept {
        return record_ ? &*record_ : nullptr;
    }

    /// Seconds since the trace started (0 when not sampled).
    [[nodiscard]] double elapsed_seconds() const;

    /// Whether per-stage spans were requested (tracer knob, snapshotted
    /// at construction so one trace is internally consistent).
    [[nodiscard]] bool span_stages() const noexcept { return span_stages_; }

private:
    friend class TraceSpan;

    Tracer* tracer_ = nullptr;
    std::optional<DecisionRecord> record_;
    Stopwatch watch_;
    TraceContext* prev_ = nullptr;
    std::uint32_t open_depth_ = 0;
    bool span_stages_ = false;
};

/// RAII nested timing span recorded into the active TraceContext (inert
/// when none is open, when `enable` is false, or when obs is disabled).
/// `name` must outlive the span (string literals in practice).
class TraceSpan {
public:
    /// The guards are inline so a span that is disabled (`enable` false —
    /// e.g. per-stage spans with the `span_stages` knob off) costs a
    /// branch, not a cross-TU call, even when it sits inside a hot loop.
    explicit TraceSpan(const char* name, bool enable = true) noexcept {
        if (enable) open(name);
    }
    ~TraceSpan() {
        if (context_ != nullptr) close();
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

private:
    void open(const char* name) noexcept;
    void close() noexcept;

    TraceContext* context_ = nullptr;
    const char* name_ = nullptr;
    double start_ = 0.0;
    std::uint32_t depth_ = 0;
};

}  // namespace hpr::obs

#endif  // HPR_OBS_TRACE_H
