#ifndef HPR_OBS_WATCHDOG_H
#define HPR_OBS_WATCHDOG_H

/// \file watchdog.h
/// Health watchdog over the flight recorder's time series.
///
/// `/metrics` hands raw numbers to an *external* alerting stack; a
/// production daemon should also be able to judge itself — both so
/// `/health` can answer a load balancer in one round trip and so the
/// crash black-box can record "the process believed it was degrading"
/// alongside the telemetry that says why.  The Watchdog runs inside the
/// flight recorder's per-tick hook and derives four signals from the
/// snapshot ring (obs/flightrecorder.h):
///
///  * **assess_p99** — the per-interval p99 of the configured assess
///    histogram over the recent window, compared against a trailing
///    baseline median.  Fires on a sustained regression ratio — the
///    screener has slowed down relative to its own recent past.
///  * **calibration_hits / refmodel_hits** — per-interval cache
///    hit-rates from counter deltas.  Fires on collapse below a floor
///    while lookups are actually flowing (an idle cache is not sick).
///  * **ingest** — fires when `hpr_store_ingest_total` has been flat
///    for N consecutive intervals after having moved at least once
///    (a stalled feed, not a daemon that never had one).
///  * **heartbeat** — event-loop responsiveness measured through an
///    injected probe (the daemon wires `net::HttpServer`'s eventfd
///    self-ping; obs cannot depend on net).  Fires when the loop took
///    longer than the budget to acknowledge the previous ping.
///
/// Every evaluation publishes `hpr_health_*` gauges into the registry
/// (so the health series itself lands in the flight recorder and the
/// black-box) and retains a reasoned HealthVerdict that
/// `/health` (net/endpoints.h) renders: overall `ok`/`degraded`, plus
/// one line per signal with the measured value, the threshold, and why
/// it did or did not fire.
///
/// render_blackbox() assembles the forensic payload the BlackBox
/// stages: the newest snapshots, the current verdict, and the recent
/// trace ring, one JSON frame per line.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flightrecorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hpr::obs {

struct WatchdogConfig {
    /// Histogram whose per-interval p99 is the latency health signal.
    std::string assess_metric = "hpr_assess_phase1_seconds";

    /// Trailing snapshots forming the latency baseline (median of
    /// per-interval p99s), and the recent snapshots judged against it.
    /// \throws std::invalid_argument (from the constructor) if either
    /// window is zero.
    std::size_t baseline_window = 30;
    std::size_t recent_window = 5;

    /// Fire assess_p99 when recent-median p99 exceeds baseline-median
    /// p99 by this factor.  \throws std::invalid_argument unless > 1.
    double p99_regression_ratio = 2.0;

    /// Minimum per-interval observations before a latency interval
    /// counts toward either median (a window that saw two requests has
    /// no meaningful p99).
    std::uint64_t min_latency_samples = 8;

    /// Fire a cache signal when the recent-window hit rate falls below
    /// this floor...
    double min_hit_rate = 0.5;
    /// ...provided at least this many lookups happened in the window.
    std::uint64_t min_cache_lookups = 32;

    /// Fire ingest after this many consecutive zero-delta intervals
    /// (counted only once ingest has moved at least once).
    /// \throws std::invalid_argument if zero.
    std::size_t ingest_stall_intervals = 5;

    /// Fire heartbeat when the event loop acknowledged the previous
    /// self-ping slower than this.  \throws std::invalid_argument
    /// unless > 0.
    double heartbeat_lag_budget_seconds = 0.25;
};

/// One evaluated health signal.
struct HealthSignal {
    std::string name;     ///< "assess_p99", "calibration_hits", ...
    bool evaluated = false;  ///< false = not enough data yet (never fires)
    bool firing = false;
    double value = 0.0;      ///< measured quantity (ratio, rate, intervals, lag)
    double threshold = 0.0;  ///< the bound it is judged against
    std::string detail;      ///< human-readable reasoning for /health
};

/// The watchdog's overall judgement at one recorder tick.
struct HealthVerdict {
    bool healthy = true;         ///< no signal firing
    std::uint64_t sequence = 0;  ///< recorder snapshot sequence evaluated at
    double wall_time = 0.0;      ///< seconds since the Unix epoch
    double uptime_seconds = 0.0;
    std::vector<HealthSignal> signals;  ///< fixed order: assess_p99,
                                        ///  calibration_hits, refmodel_hits,
                                        ///  ingest, heartbeat
};

/// Evaluates health signals over a FlightRecorder's ring.  evaluate()
/// is driven from the recorder's on-sample hook; last_verdict() serves
/// `/health` from any thread.
class Watchdog {
public:
    explicit Watchdog(WatchdogConfig config = {},
                      Registry& registry = default_registry());

    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /// Install the event-loop responsiveness probe: returns the measured
    /// lag (seconds) of the most recent self-ping round trip, or a
    /// negative value when no measurement is available yet.  The probe
    /// runs once per evaluate(); it should also *send* the next ping.
    /// Unset = the heartbeat signal reports "no probe" and never fires.
    void set_heartbeat_probe(std::function<double()> probe);

    /// Derive all signals from the recorder's retained snapshots,
    /// publish the `hpr_health_*` gauges, retain and return the verdict.
    /// Serialized internally; call from the recorder hook.
    HealthVerdict evaluate(const FlightRecorder& recorder);

    /// The most recent verdict (default-constructed healthy verdict with
    /// sequence 0 before the first evaluate()).
    [[nodiscard]] HealthVerdict last_verdict() const;

    [[nodiscard]] std::uint64_t evaluations() const noexcept;

    [[nodiscard]] const WatchdogConfig& config() const noexcept {
        return config_;
    }

private:
    WatchdogConfig config_;

    // Health gauges, resolved once at construction so the metric set a
    // CI inventory sees is deterministic.
    Counter& evaluations_metric_;
    Gauge& ok_metric_;
    Gauge& firing_metric_;
    Gauge& p99_ratio_metric_;          ///< percent (100 = at baseline)
    Gauge& calibration_rate_metric_;   ///< percent; -1 = not evaluated
    Gauge& refmodel_rate_metric_;      ///< percent; -1 = not evaluated
    Gauge& ingest_stalled_metric_;     ///< consecutive flat intervals
    Gauge& heartbeat_lag_metric_;      ///< microseconds; -1 = no probe/sample

    mutable std::mutex mutex_;  ///< guards verdict_, probe_, stall state
    HealthVerdict verdict_;
    std::function<double()> probe_;
    std::uint64_t last_ingest_total_ = 0;
    bool ingest_seen_ = false;      ///< ingest moved at least once
    std::size_t flat_intervals_ = 0;
    std::atomic<std::uint64_t> evaluation_count_{0};
};

/// One-line JSON frame of a verdict for the black-box file:
/// `{"type":"health","seq":..,"wall_time":..,"healthy":..,
///   "signals":[{"name":..,"evaluated":..,"firing":..,"value":..,
///   "threshold":..,"detail":..},...]}` (no trailing newline).
[[nodiscard]] std::string to_frame(const HealthVerdict& verdict);

/// Assemble the black-box payload: the newest `snapshot_n` recorder
/// snapshots, the watchdog's current verdict (when given), and the
/// newest `trace_n` decision records — one newline-terminated JSON
/// frame per line, ready for BlackBox::publish().  Trace frames are
/// `{"type":"trace","record":<to_jsonl object>}`.
[[nodiscard]] std::string render_blackbox(const FlightRecorder& recorder,
                                          const Watchdog* watchdog,
                                          Tracer* tracer,
                                          std::size_t snapshot_n = 32,
                                          std::size_t trace_n = 64);

}  // namespace hpr::obs

#endif  // HPR_OBS_WATCHDOG_H
