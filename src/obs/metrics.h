#ifndef HPR_OBS_METRICS_H
#define HPR_OBS_METRICS_H

/// \file metrics.h
/// A tiny dependency-free metrics substrate for the reputation service.
///
/// The paper's whole evaluation is about operational quantities — detection
/// rate (Fig. 7), false-alarm rate, screening running time (Fig. 9) — yet a
/// one-shot benchmark can only measure them offline.  A production
/// deployment screening live traffic needs the same numbers continuously:
/// how many assessments ended suspicious, how often the calibration cache
/// missed, how deep the worker-pool queue is, how long phase 1 takes at
/// p99.  This header provides the three metric primitives that cover those
/// questions, in the spirit of procstat-style in-process registries rather
/// than a vendored metrics framework:
///
///  * Counter   — monotone event count (lock-free, relaxed atomics);
///  * Gauge     — instantaneous level, settable and add/sub-able;
///  * Histogram — fixed-bucket distribution with p50/p95/p99 readout,
///                designed for latencies in seconds.
///
/// A Registry owns named metrics with stable addresses: instrumented code
/// resolves a metric once (typically into a static) and then records with
/// plain atomic operations — no lookup, no lock, no allocation on the hot
/// path.  `default_registry()` is the process-wide instance every library
/// instrumentation site records into; exporters (obs/export.h) render any
/// registry as Prometheus text or JSON.
///
/// Cost model: recording is one-to-few relaxed atomic RMW operations (plus
/// one steady-clock read pair for timed spans).  The global kill switch
/// `set_enabled(false)` reduces every site to a single relaxed load +
/// predictable branch — operationally equivalent to compiling the
/// instrumentation out (bench/obs_overhead.cpp quantifies both against an
/// uninstrumented baseline and enforces a <2% budget on the assessment hot
/// path).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hpr::obs {

/// Process-wide instrumentation kill switch (default: enabled).  Checked
/// by every recording operation with a relaxed load; exporters and readout
/// accessors ignore it (already-recorded values stay readable).
void set_enabled(bool enabled) noexcept;
[[nodiscard]] bool enabled() noexcept;

/// Monotonically increasing event counter.
class Counter {
public:
    void increment(std::uint64_t by = 1) noexcept {
        if (enabled()) value_.fetch_add(by, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

    /// Zero the counter.  Counters are monotone by contract; this exists
    /// only for Registry::reset_values() epochs (benches, tests).
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, cache entries, history length).
/// Integer-valued: every level the library exposes is a count.
class Gauge {
public:
    void set(std::int64_t value) noexcept {
        if (enabled()) value_.store(value, std::memory_order_relaxed);
    }
    void add(std::int64_t by = 1) noexcept {
        if (enabled()) value_.fetch_add(by, std::memory_order_relaxed);
    }
    void sub(std::int64_t by = 1) noexcept { add(-by); }

    /// Ratchet the gauge up to `value` if it is larger than the current
    /// level (lock-free running maximum).
    void set_max(std::int64_t value) noexcept {
        if (!enabled()) return;
        std::int64_t current = value_.load(std::memory_order_relaxed);
        while (value > current &&
               !value_.compare_exchange_weak(current, value,
                                             std::memory_order_relaxed)) {
        }
    }

    [[nodiscard]] std::int64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

    /// Zero the gauge regardless of the kill switch (reset epochs).
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Point-in-time view of a histogram (see Histogram::snapshot()).
struct HistogramSnapshot {
    std::vector<double> bounds;          ///< inclusive upper bounds, ascending
    std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 (last = overflow)
    std::uint64_t count = 0;             ///< total observations
    double sum = 0.0;                    ///< sum of observed values

    /// Empirical q-quantile estimated by linear interpolation inside the
    /// containing bucket (the standard Prometheus histogram_quantile
    /// estimate).  Overflow-bucket hits clamp to the largest finite bound.
    /// \throws std::invalid_argument unless q is in [0, 1].
    /// \returns 0 for an empty histogram.
    [[nodiscard]] double quantile(double q) const;

    [[nodiscard]] double mean() const noexcept {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
};

/// Fixed-bucket histogram: lock-free recording into atomic bucket counts.
/// Bucket bounds are fixed at construction; values above the last bound
/// land in an implicit +Inf overflow bucket.
class Histogram {
public:
    /// \param bounds  strictly increasing, positive, finite upper bounds.
    /// \throws std::invalid_argument if bounds is empty or not strictly
    ///         increasing/finite/positive.
    explicit Histogram(std::vector<double> bounds);

    void observe(double value) noexcept;

    [[nodiscard]] const std::vector<double>& bounds() const noexcept {
        return bounds_;
    }
    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const noexcept {
        return sum_.load(std::memory_order_relaxed);
    }

    /// Consistent-enough copy of the current state for readout.  Buckets
    /// are read with relaxed loads, so a snapshot racing writers may be
    /// mid-update by a few observations — fine for monitoring, and the
    /// totals it reports are values actually recorded.
    [[nodiscard]] HistogramSnapshot snapshot() const;

    /// Zero all buckets (Registry::reset_values() epochs).
    void reset() noexcept;

private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< bounds_.size() + 1
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/// Default latency bucket ladder: 1–2.5–5 per decade from 1 µs to 10 s,
/// in seconds.  Covers everything from a counter bump to a cold
/// Monte-Carlo calibration.
[[nodiscard]] const std::vector<double>& default_latency_buckets();

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricKind kind) noexcept;

/// Thread-safe registry of named metrics with stable addresses.
///
/// Names follow the Prometheus convention `[a-zA-Z_][a-zA-Z0-9_]*`, with
/// `hpr_` as the library prefix, `_total` for counters and `_seconds` for
/// latency histograms (docs/observability.md lists every metric the
/// library exports).  Registering an existing name returns the existing
/// metric; registering it as a different kind throws.
class Registry {
public:
    /// Label set of an info-style gauge (e.g. `hpr_build_info`), rendered
    /// as `{key="value",...}` after the name in the Prometheus exposition
    /// and as a `labels` object in the JSON snapshot.  Keys follow the
    /// metric-name grammar; values are escaped by the exporters.
    using LabelSet = std::vector<std::pair<std::string, std::string>>;

    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// \throws std::invalid_argument on an invalid name or kind mismatch.
    Counter& counter(std::string_view name, std::string_view help = {});
    Gauge& gauge(std::string_view name, std::string_view help = {});

    /// Gauge with a constant label set — the Prometheus "info metric"
    /// idiom: the interesting data rides in the labels, the value is 1.
    /// Labels are fixed by the first registration (later lookups of the
    /// same name ignore theirs, like histogram bounds).
    /// \throws std::invalid_argument on an invalid name, label key, or
    ///         kind mismatch.
    Gauge& gauge(std::string_view name, std::string_view help, LabelSet labels);

    /// Gauge whose value is recomputed by `provider` at the start of
    /// every visit() — scrape-time freshness for derived levels like
    /// uptime, instead of freezing at whatever the last explicit
    /// publish saw.  The provider is fixed by the first registration
    /// that supplies one (later lookups ignore theirs, like labels and
    /// histogram bounds); it runs outside the registry lock and must be
    /// thread-safe.  set() still works between visits; the provider
    /// simply overwrites on the next one.
    Gauge& gauge(std::string_view name, std::string_view help,
                 std::function<std::int64_t()> provider);

    /// \param bounds  bucket bounds; empty means default_latency_buckets().
    ///                Ignored when the histogram already exists.
    Histogram& histogram(std::string_view name, std::string_view help = {},
                         std::vector<double> bounds = {});

    /// One registered metric, for exporters and tests.
    struct Entry {
        std::string name;
        std::string help;
        MetricKind kind;
        const Counter* counter = nullptr;      ///< set iff kind == kCounter
        const Gauge* gauge = nullptr;          ///< set iff kind == kGauge
        const Histogram* histogram = nullptr;  ///< set iff kind == kHistogram
        LabelSet labels;                       ///< non-empty only for info gauges
    };

    /// Visit every metric in name order.  The metric pointers stay valid
    /// for the registry's lifetime (metrics are never unregistered).
    void visit(const std::function<void(const Entry&)>& fn) const;

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] bool contains(std::string_view name) const;

    /// Zero every counter, gauge and histogram (bench/test epochs).  The
    /// metrics themselves stay registered and their addresses stable.
    void reset_values();

    /// Test/bench entry point for clearing process-global metric state:
    /// zeroes counters and gauges and clears histogram buckets so a test
    /// or bench lane starts from a clean slate instead of measuring
    /// carry-over.  Semantically reset_values(); the explicit name marks
    /// call sites that deliberately break counter monotonicity.
    void reset_for_tests() { reset_values(); }

private:
    struct Slot {
        std::string help;
        MetricKind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        LabelSet labels;
        std::function<std::int64_t()> provider;  ///< refreshed at visit()
    };

    Slot& slot_for(std::string_view name, std::string_view help, MetricKind kind,
                   std::vector<double>* bounds, LabelSet* labels = nullptr);

    mutable std::mutex mutex_;
    std::map<std::string, Slot, std::less<>> metrics_;
};

/// The process-wide registry all library instrumentation records into.
[[nodiscard]] Registry& default_registry();

}  // namespace hpr::obs

#endif  // HPR_OBS_METRICS_H
