#include "obs/introspection.h"

#include <mutex>
#include <sstream>
#include <stdexcept>

namespace hpr::obs {

namespace {

/// A registerable path: starts with '/', non-empty segments, no trailing
/// slash ("/" itself is reserved for the automatic root listing), no
/// query-string or whitespace characters.
bool valid_path(std::string_view path) {
    if (path.size() < 2 || path.front() != '/') return false;
    if (path.back() == '/') return false;
    char prev = '\0';
    for (const char c : path) {
        if (c == '?' || c == '#' || c == ' ' || c == '\t' || c == '\n' ||
            c == '\r') {
            return false;
        }
        if (c == '/' && prev == '/') return false;  // empty segment
        prev = c;
    }
    return true;
}

/// Is `path` equal to `prefix` or nested below it at a '/' boundary?
bool at_or_below(std::string_view path, std::string_view prefix) {
    if (!path.starts_with(prefix)) return false;
    return path.size() == prefix.size() || path[prefix.size()] == '/';
}

}  // namespace

std::optional<std::string> IntrospectionRequest::param(
    std::string_view key) const {
    std::string_view rest = query;
    while (!rest.empty()) {
        const std::size_t amp = rest.find('&');
        const std::string_view pair =
            amp == std::string_view::npos ? rest : rest.substr(0, amp);
        rest = amp == std::string_view::npos ? std::string_view{}
                                             : rest.substr(amp + 1);
        const std::size_t eq = pair.find('=');
        const std::string_view name =
            eq == std::string_view::npos ? pair : pair.substr(0, eq);
        if (name == key) {
            return std::string{eq == std::string_view::npos
                                   ? std::string_view{}
                                   : pair.substr(eq + 1)};
        }
    }
    return std::nullopt;
}

void IntrospectionTree::add(std::string path, std::string content_type,
                            std::string summary, IntrospectionHandler handler) {
    insert(std::move(path), std::move(content_type), std::move(summary),
           std::move(handler), /*subtree=*/false);
}

void IntrospectionTree::add_prefix(std::string path, std::string content_type,
                                   std::string summary,
                                   IntrospectionHandler handler) {
    insert(std::move(path), std::move(content_type), std::move(summary),
           std::move(handler), /*subtree=*/true);
}

void IntrospectionTree::insert(std::string path, std::string content_type,
                               std::string summary, IntrospectionHandler handler,
                               bool subtree) {
    if (!valid_path(path)) {
        throw std::invalid_argument("IntrospectionTree: invalid path '" + path +
                                    "'");
    }
    if (handler == nullptr) {
        throw std::invalid_argument("IntrospectionTree: null handler for '" +
                                    path + "'");
    }
    const std::unique_lock lock{mutex_};
    const auto [it, inserted] = nodes_.emplace(
        std::move(path), Node{std::move(content_type), std::move(summary),
                              std::move(handler), subtree});
    if (!inserted) {
        throw std::invalid_argument("IntrospectionTree: path '" + it->first +
                                    "' already registered");
    }
}

IntrospectionPage IntrospectionTree::get(std::string_view target) const {
    IntrospectionRequest request;
    const std::size_t qmark = target.find('?');
    std::string_view path =
        qmark == std::string_view::npos ? target : target.substr(0, qmark);
    if (qmark != std::string_view::npos) {
        request.query = std::string{target.substr(qmark + 1)};
    }
    while (path.size() > 1 && path.back() == '/') path.remove_suffix(1);
    if (path.empty() || path.front() != '/') {
        return IntrospectionPage{404, "text/plain; charset=utf-8",
                                 "not found: " + std::string{target} + "\n"};
    }
    request.path = std::string{path};

    const Node* node = nullptr;
    {
        const std::shared_lock lock{mutex_};
        if (const auto it = nodes_.find(request.path); it != nodes_.end()) {
            node = &it->second;
        } else {
            // Deepest registered subtree enclosing the path: walk the
            // ancestor chain from the full path upward.
            std::string_view ancestor = path;
            while (node == nullptr) {
                const std::size_t slash = ancestor.rfind('/');
                if (slash == 0 || slash == std::string_view::npos) break;
                ancestor = ancestor.substr(0, slash);
                const auto up = nodes_.find(ancestor);
                if (up != nodes_.end() && up->second.subtree) node = &up->second;
            }
        }
        // Handlers are never unregistered, so the pointer (and the
        // handler it carries) stays valid after the lock is released;
        // calling out without the lock keeps slow handlers from
        // blocking registration or other readers.
    }
    if (node == nullptr) return listing(request.path);
    try {
        return node->handler(request);
    } catch (const std::exception& error) {
        return IntrospectionPage{500, "text/plain; charset=utf-8",
                                 "internal error rendering " + request.path +
                                     ": " + error.what() + "\n"};
    }
}

IntrospectionPage IntrospectionTree::listing(std::string_view prefix) const {
    std::ostringstream out;
    std::size_t matches = 0;
    {
        const std::shared_lock lock{mutex_};
        for (const auto& [path, node] : nodes_) {
            if (prefix != "/" && !at_or_below(path, prefix)) continue;
            ++matches;
            out << path;
            if (node.subtree) out << "/...";
            // Two-space-separated columns keep rows greppable and
            // awk-able without a fixed-width contract.
            out << "  " << node.content_type << "  " << node.summary << '\n';
        }
    }
    if (matches == 0) {
        return IntrospectionPage{404, "text/plain; charset=utf-8",
                                 "not found: " + std::string{prefix} + "\n"};
    }
    return IntrospectionPage{200, "text/plain; charset=utf-8", out.str()};
}

std::vector<IntrospectionTree::NodeInfo> IntrospectionTree::nodes() const {
    std::vector<NodeInfo> out;
    const std::shared_lock lock{mutex_};
    out.reserve(nodes_.size());
    for (const auto& [path, node] : nodes_) {
        out.push_back(NodeInfo{path, node.content_type, node.summary,
                               node.subtree});
    }
    return out;
}

std::size_t IntrospectionTree::size() const {
    const std::shared_lock lock{mutex_};
    return nodes_.size();
}

}  // namespace hpr::obs
