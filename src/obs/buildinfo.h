#ifndef HPR_OBS_BUILDINFO_H
#define HPR_OBS_BUILDINFO_H

/// \file buildinfo.h
/// Process build and runtime identity for scrape consumers.
///
/// A metrics endpoint that cannot say *what* is being scraped is
/// operationally blind: dashboards comparing two deployments need the
/// library version and toolchain of each process, and alert rules need
/// to know how long it has been up (a 10-second-old process with empty
/// counters is not an outage).  Two standard Prometheus idioms cover
/// this:
///
///  * `hpr_build_info` — constant-1 info gauge whose labels carry the
///    library version (CMake project version), the compiler that built
///    the binary, and the C++ standard it was compiled under;
///  * `hpr_uptime_seconds` — seconds since process start (steady
///    clock), provider-backed (Registry::gauge with a value provider)
///    so every registry visit — each scrape, each flight-recorder
///    sample — sees a fresh value, not the one frozen at the last
///    publish_uptime() call.
///
/// register_build_identity() is idempotent and cheap; callers that
/// serve scrapes (net/endpoints.h, the end-of-run dumps in
/// examples/reputation_server and bench_common) call publish_uptime()
/// just before rendering.

#include "obs/metrics.h"

namespace hpr::obs {

/// Library version string (the CMake project version the binary was
/// built from).
[[nodiscard]] const char* build_version() noexcept;

/// Human-readable compiler identity, e.g. "gcc 12.2.0".
[[nodiscard]] const char* build_compiler() noexcept;

/// Seconds since process start (steady clock, captured at static
/// initialization).
[[nodiscard]] double uptime_seconds() noexcept;

/// Register `hpr_build_info` (with version/compiler/std labels) and
/// `hpr_uptime_seconds` into `registry` and publish current values.
/// Idempotent.
void register_build_identity(Registry& registry = default_registry());

/// Register `hpr_uptime_seconds` with its value provider (idempotent)
/// and refresh it.  After the first call every registry visit refreshes
/// the gauge on its own; calling again before a dump stays harmless.
void publish_uptime(Registry& registry = default_registry());

}  // namespace hpr::obs

#endif  // HPR_OBS_BUILDINFO_H
