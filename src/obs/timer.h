#ifndef HPR_OBS_TIMER_H
#define HPR_OBS_TIMER_H

/// \file timer.h
/// Steady-clock timing helpers shared by instrumentation sites, benches
/// and examples, so "how long did this take" is spelled one way across the
/// codebase instead of hand-rolled std::chrono arithmetic at every site.
///
///  * Stopwatch   — elapsed seconds since construction / restart();
///  * ScopedTimer — RAII span: records its lifetime into a Histogram on
///                  destruction.  Zero clock reads when instrumentation is
///                  globally disabled.

#include <chrono>

#include "obs/metrics.h"

namespace hpr::obs {

/// Monotonic elapsed-time measurement (never affected by wall-clock
/// adjustments).
class Stopwatch {
public:
    using Clock = std::chrono::steady_clock;

    Stopwatch() : start_(Clock::now()) {}

    /// Seconds since construction or the last restart().
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    void restart() { start_ = Clock::now(); }

private:
    Clock::time_point start_;
};

/// RAII latency span: observes the enclosed scope's duration (in seconds)
/// into a histogram when the scope exits.
///
///     void serve() {
///         obs::ScopedTimer span{request_latency_histogram};
///         ...;
///     }
///
/// When the global kill switch is off at construction, the span takes no
/// clock reading at all — the whole object degenerates to a null-pointer
/// store, keeping disabled instrumentation equivalent to compiled-out
/// code.
class ScopedTimer {
public:
    explicit ScopedTimer(Histogram& histogram) noexcept
        : histogram_(enabled() ? &histogram : nullptr),
          start_(histogram_ != nullptr ? Stopwatch::Clock::now()
                                       : Stopwatch::Clock::time_point{}) {}

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    ~ScopedTimer() { stop(); }

    /// End the span early (idempotent; the destructor becomes a no-op).
    void stop() noexcept {
        if (histogram_ == nullptr) return;
        histogram_->observe(
            std::chrono::duration<double>(Stopwatch::Clock::now() - start_).count());
        histogram_ = nullptr;
    }

    /// Abandon the span without recording (e.g. on an exceptional path the
    /// caller does not want in a latency histogram).
    void cancel() noexcept { histogram_ = nullptr; }

private:
    Histogram* histogram_;
    Stopwatch::Clock::time_point start_;
};

}  // namespace hpr::obs

#endif  // HPR_OBS_TIMER_H
