#ifndef HPR_OBS_EXPORT_H
#define HPR_OBS_EXPORT_H

/// \file export.h
/// Registry exporters: render every metric of a Registry as
///
///  * Prometheus text exposition format (to_prometheus) — counters carry
///    `# TYPE <name> counter` headers, histograms expand into the standard
///    `_bucket{le="..."}` / `_sum` / `_count` series, so the output can be
///    scraped verbatim; or
///  * a single JSON object (to_json) — machine-readable snapshots for
///    benches and tests, with p50/p95/p99 precomputed per histogram.
///
/// Both render a point-in-time snapshot; neither blocks recording.

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace hpr::obs {

/// Prometheus text exposition (version 0.0.4) of every metric, in name
/// order.  `help` strings become `# HELP` lines when non-empty; names and
/// help text are passed through escape_prometheus() so a stray newline or
/// backslash can never corrupt the line-oriented exposition.
[[nodiscard]] std::string to_prometheus(const Registry& registry);

/// Escape text for the Prometheus exposition format: `\\` -> `\\\\` and
/// newline -> `\\n`, per the HELP-line escaping rules.  Registry enforces
/// `[a-zA-Z_][a-zA-Z0-9_]*` names, but the exporter escapes defensively
/// anyway so it stays safe for callers that format ad-hoc text.
[[nodiscard]] std::string escape_prometheus(std::string_view text);

/// Escape text for embedding inside a JSON string literal: quotes,
/// backslashes, and all control characters (< 0x20) as `\\uOOXX` or the
/// short forms `\\n` `\\r` `\\t` `\\b` `\\f`.
[[nodiscard]] std::string escape_json(std::string_view text);

/// JSON object `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
/// Histograms carry count, sum, mean, p50/p95/p99 and the cumulative
/// bucket table.
[[nodiscard]] std::string to_json(const Registry& registry);

}  // namespace hpr::obs

#endif  // HPR_OBS_EXPORT_H
