#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hpr::obs {

namespace {

std::atomic<bool> g_enabled{true};

bool valid_name(std::string_view name) {
    if (name.empty()) return false;
    const auto alpha_or_underscore = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    };
    if (!alpha_or_underscore(name.front())) return false;
    return std::all_of(name.begin(), name.end(), [&](char c) {
        return alpha_or_underscore(c) || (c >= '0' && c <= '9');
    });
}

}  // namespace

void set_enabled(bool enabled) noexcept {
    g_enabled.store(enabled, std::memory_order_relaxed);
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

double HistogramSnapshot::quantile(double q) const {
    if (!(q >= 0.0 && q <= 1.0)) {
        throw std::invalid_argument("HistogramSnapshot::quantile: q must be in [0, 1]");
    }
    if (count == 0) return 0.0;
    // Rank of the target observation (1-based, rounded up like Prometheus).
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        cumulative += counts[b];
        if (cumulative < target) continue;
        if (b >= bounds.size()) return bounds.back();  // overflow bucket: clamp
        const double hi = bounds[b];
        const double lo = b == 0 ? 0.0 : bounds[b - 1];
        const std::uint64_t before = cumulative - counts[b];
        const double within =
            static_cast<double>(target - before) / static_cast<double>(counts[b]);
        return lo + (hi - lo) * within;
    }
    return bounds.back();
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    if (bounds_.empty()) {
        throw std::invalid_argument("Histogram: need at least one bucket bound");
    }
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (!std::isfinite(bounds_[i]) || bounds_[i] <= 0.0) {
            throw std::invalid_argument("Histogram: bounds must be positive and finite");
        }
        if (i > 0 && bounds_[i] <= bounds_[i - 1]) {
            throw std::invalid_argument("Histogram: bounds must be strictly increasing");
        }
    }
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
    if (!enabled()) return;
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double sum = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(sum, sum + value, std::memory_order_relaxed)) {
    }
}

void Histogram::reset() noexcept {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        buckets_[i].store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
    HistogramSnapshot snap;
    snap.bounds = bounds_;
    snap.counts.resize(bounds_.size() + 1);
    snap.count = 0;
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
        snap.count += snap.counts[i];
    }
    snap.sum = sum_.load(std::memory_order_relaxed);
    return snap;
}

const std::vector<double>& default_latency_buckets() {
    // Intentionally leaked, like default_registry(): metrics may be
    // registered during static destruction (e.g. ~Calibrator of a
    // process-lifetime calibrator resolving its metrics for the first
    // time), which must not read an already-destroyed vector.
    static const std::vector<double>& kBuckets = *[] {
        auto* bounds = new std::vector<double>;
        for (double decade = 1e-6; decade < 10.0; decade *= 10.0) {
            bounds->push_back(decade);
            bounds->push_back(decade * 2.5);
            bounds->push_back(decade * 5.0);
        }
        bounds->push_back(10.0);
        return bounds;
    }();
    return kBuckets;
}

const char* to_string(MetricKind kind) noexcept {
    switch (kind) {
        case MetricKind::kCounter: return "counter";
        case MetricKind::kGauge: return "gauge";
        case MetricKind::kHistogram: return "histogram";
    }
    return "unknown";
}

Registry::Slot& Registry::slot_for(std::string_view name, std::string_view help,
                                   MetricKind kind, std::vector<double>* bounds,
                                   LabelSet* labels) {
    if (!valid_name(name)) {
        throw std::invalid_argument("Registry: invalid metric name '" +
                                    std::string{name} + "'");
    }
    if (labels != nullptr) {
        for (const auto& [key, value] : *labels) {
            if (!valid_name(key)) {
                throw std::invalid_argument("Registry: invalid label key '" +
                                            key + "' on metric '" +
                                            std::string{name} + "'");
            }
        }
    }
    const std::scoped_lock lock{mutex_};
    const auto it = metrics_.find(name);
    if (it != metrics_.end()) {
        if (it->second.kind != kind) {
            throw std::invalid_argument(
                "Registry: metric '" + std::string{name} + "' already registered as " +
                to_string(it->second.kind) + ", requested " + to_string(kind));
        }
        return it->second;
    }
    Slot slot;
    slot.help = std::string{help};
    slot.kind = kind;
    if (labels != nullptr) slot.labels = std::move(*labels);
    switch (kind) {
        case MetricKind::kCounter: slot.counter = std::make_unique<Counter>(); break;
        case MetricKind::kGauge: slot.gauge = std::make_unique<Gauge>(); break;
        case MetricKind::kHistogram:
            slot.histogram = std::make_unique<Histogram>(
                bounds != nullptr && !bounds->empty() ? std::move(*bounds)
                                                      : default_latency_buckets());
            break;
    }
    return metrics_.emplace(std::string{name}, std::move(slot)).first->second;
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
    return *slot_for(name, help, MetricKind::kCounter, nullptr).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
    return *slot_for(name, help, MetricKind::kGauge, nullptr).gauge;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       LabelSet labels) {
    return *slot_for(name, help, MetricKind::kGauge, nullptr, &labels).gauge;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       std::function<std::int64_t()> provider) {
    Slot& slot = slot_for(name, help, MetricKind::kGauge, nullptr);
    {
        const std::scoped_lock lock{mutex_};
        if (!slot.provider && provider) slot.provider = std::move(provider);
    }
    // First registration wins (like labels); once set the provider is
    // never reassigned, so this unlocked read is race-free.
    if (slot.provider) slot.gauge->set(slot.provider());
    return *slot.gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds) {
    return *slot_for(name, help, MetricKind::kHistogram, &bounds).histogram;
}

void Registry::visit(const std::function<void(const Entry&)>& fn) const {
    // Copy the directory under the lock, then call out without it: metric
    // objects have stable addresses and their reads are atomic, so fn may
    // take as long as it likes (exporters do) without blocking writers
    // that register new metrics.
    std::vector<Entry> entries;
    std::vector<std::pair<Gauge*, const std::function<std::int64_t()>*>> fresh;
    {
        const std::scoped_lock lock{mutex_};
        entries.reserve(metrics_.size());
        for (const auto& [name, slot] : metrics_) {
            if (slot.provider) fresh.emplace_back(slot.gauge.get(), &slot.provider);
            entries.push_back(Entry{name, slot.help, slot.kind, slot.counter.get(),
                                    slot.gauge.get(), slot.histogram.get(),
                                    slot.labels});
        }
    }
    // Provider-backed gauges refresh before fn sees them.  Outside the
    // lock (a provider may be arbitrary user code); the pointers are
    // stable map nodes and a provider is never reassigned once set.
    for (const auto& [gauge, provider] : fresh) gauge->set((*provider)());
    for (const Entry& entry : entries) fn(entry);
}

std::size_t Registry::size() const {
    const std::scoped_lock lock{mutex_};
    return metrics_.size();
}

bool Registry::contains(std::string_view name) const {
    const std::scoped_lock lock{mutex_};
    return metrics_.find(name) != metrics_.end();
}

void Registry::reset_values() {
    const std::scoped_lock lock{mutex_};
    for (auto& [name, slot] : metrics_) {
        switch (slot.kind) {
            case MetricKind::kCounter: slot.counter->reset(); break;
            case MetricKind::kGauge: slot.gauge->reset(); break;
            case MetricKind::kHistogram: slot.histogram->reset(); break;
        }
    }
}

Registry& default_registry() {
    static Registry* registry = new Registry();  // never destroyed: metrics
    return *registry;  // must outlive static-destruction-order users
}

}  // namespace hpr::obs
