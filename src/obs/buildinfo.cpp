#include "obs/buildinfo.h"

#include <chrono>
#include <cstdio>

namespace hpr::obs {

namespace {

#ifndef HPR_VERSION
#define HPR_VERSION "0.0.0"  // set by src/obs/CMakeLists.txt from the project version
#endif

/// Captured at static initialization, so uptime measures the process,
/// not the first scrape.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

const char* compiler_identity() {
    static const char* const identity = [] {
        static char buffer[64];
#if defined(__clang__)
        std::snprintf(buffer, sizeof buffer, "clang %d.%d.%d", __clang_major__,
                      __clang_minor__, __clang_patchlevel__);
#elif defined(__GNUC__)
        std::snprintf(buffer, sizeof buffer, "gcc %d.%d.%d", __GNUC__,
                      __GNUC_MINOR__, __GNUC_PATCHLEVEL__);
#else
        std::snprintf(buffer, sizeof buffer, "unknown");
#endif
        return buffer;
    }();
    return identity;
}

const char* standard_identity() {
    static const char* const identity = [] {
        static char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%ld", static_cast<long>(__cplusplus));
        return buffer;
    }();
    return identity;
}

}  // namespace

const char* build_version() noexcept { return HPR_VERSION; }

const char* build_compiler() noexcept { return compiler_identity(); }

double uptime_seconds() noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         g_process_start)
        .count();
}

void register_build_identity(Registry& registry) {
    registry
        .gauge("hpr_build_info",
               "Build identity of this process; the value is always 1",
               Registry::LabelSet{{"version", build_version()},
                                  {"compiler", build_compiler()},
                                  {"cpp_std", standard_identity()}})
        .set(1);
    publish_uptime(registry);
}

void publish_uptime(Registry& registry) {
    // Provider-backed: after the first registration every Registry
    // visit (each /metrics scrape, each flight-recorder sample)
    // refreshes the value itself — the gauge can never freeze at the
    // last explicit publish again.
    registry.gauge(
        "hpr_uptime_seconds",
        "Whole seconds since process start (steady clock)",
        [] { return static_cast<std::int64_t>(uptime_seconds()); });
}

}  // namespace hpr::obs
