#include "obs/watchdog.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/export.h"

namespace hpr::obs {

namespace {

std::string format_double(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.12g", value);
    return buffer;
}

std::string format_value(double value, const char* unit) {
    char buffer[96];
    std::snprintf(buffer, sizeof buffer, "%.4g%s", value, unit);
    return buffer;
}

double median(std::vector<double> values) {
    if (values.empty()) return 0.0;
    const std::size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid, values.end());
    double upper = values[mid];
    if (values.size() % 2 == 1) return upper;
    return (*std::max_element(values.begin(), values.begin() + mid) + upper) /
           2.0;
}

const MetricPoint* find_point(const RecorderSnapshot& snapshot,
                              std::string_view name) {
    const auto it = std::lower_bound(
        snapshot.points.begin(), snapshot.points.end(), name,
        [](const auto& entry, std::string_view key) { return entry.first < key; });
    if (it == snapshot.points.end() || it->first != name) return nullptr;
    return &it->second;
}

/// Sum of a counter's per-interval deltas over the newest `n` snapshots.
std::uint64_t window_delta(const std::vector<RecorderSnapshot>& snapshots,
                           std::string_view name, std::size_t n) {
    std::uint64_t total = 0;
    const std::size_t begin = snapshots.size() > n ? snapshots.size() - n : 0;
    for (std::size_t i = begin; i < snapshots.size(); ++i) {
        const MetricPoint* point = find_point(snapshots[i], name);
        if (point != nullptr && point->kind == MetricKind::kCounter) {
            total += point->delta;
        }
    }
    return total;
}

/// Hit-rate collapse signal shared by both caches.
HealthSignal cache_signal(const char* name,
                          const std::vector<RecorderSnapshot>& snapshots,
                          std::string_view hits_metric,
                          std::string_view misses_metric,
                          const WatchdogConfig& config, double* rate_out) {
    HealthSignal signal;
    signal.name = name;
    signal.threshold = config.min_hit_rate;
    const std::uint64_t hits =
        window_delta(snapshots, hits_metric, config.recent_window);
    const std::uint64_t misses =
        window_delta(snapshots, misses_metric, config.recent_window);
    const std::uint64_t lookups = hits + misses;
    if (lookups < config.min_cache_lookups) {
        signal.detail = "only " + std::to_string(lookups) + " lookups in window (need " +
                        std::to_string(config.min_cache_lookups) + ") - not judged";
        *rate_out = -1.0;
        return signal;
    }
    signal.evaluated = true;
    signal.value =
        static_cast<double>(hits) / static_cast<double>(lookups);
    signal.firing = signal.value < config.min_hit_rate;
    signal.detail = "hit rate " + format_value(signal.value * 100.0, "%") +
                    " over " + std::to_string(lookups) + " lookups (floor " +
                    format_value(config.min_hit_rate * 100.0, "%") + ")";
    *rate_out = signal.value;
    return signal;
}

}  // namespace

Watchdog::Watchdog(WatchdogConfig config, Registry& registry)
    : config_(std::move(config)),
      evaluations_metric_(registry.counter(
          "hpr_health_evaluations_total",
          "Watchdog health evaluations performed")),
      ok_metric_(registry.gauge("hpr_health_ok",
                                "1 when no health signal is firing, else 0")),
      firing_metric_(registry.gauge("hpr_health_signals_firing",
                                    "Health signals currently firing")),
      p99_ratio_metric_(registry.gauge(
          "hpr_health_assess_p99_ratio_percent",
          "Recent assess p99 as percent of trailing baseline (100 = flat; "
          "-1 = not enough data)")),
      calibration_rate_metric_(registry.gauge(
          "hpr_health_calibration_hit_rate_percent",
          "Calibration-cache hit rate over the recent window (-1 = idle)")),
      refmodel_rate_metric_(registry.gauge(
          "hpr_health_refmodel_hit_rate_percent",
          "Reference-model-cache hit rate over the recent window (-1 = idle)")),
      ingest_stalled_metric_(registry.gauge(
          "hpr_health_ingest_flat_intervals",
          "Consecutive recorder intervals with zero store ingest")),
      heartbeat_lag_metric_(registry.gauge(
          "hpr_health_heartbeat_lag_micros",
          "Event-loop self-ping acknowledgement lag (-1 = no sample)")) {
    if (config_.baseline_window == 0 || config_.recent_window == 0) {
        throw std::invalid_argument("Watchdog: windows must be nonzero");
    }
    if (!(config_.p99_regression_ratio > 1.0)) {
        throw std::invalid_argument(
            "Watchdog: p99_regression_ratio must exceed 1");
    }
    if (config_.ingest_stall_intervals == 0) {
        throw std::invalid_argument(
            "Watchdog: ingest_stall_intervals must be nonzero");
    }
    if (!(config_.heartbeat_lag_budget_seconds > 0.0)) {
        throw std::invalid_argument(
            "Watchdog: heartbeat_lag_budget_seconds must be positive");
    }
    ok_metric_.set(1);
    p99_ratio_metric_.set(-1);
    calibration_rate_metric_.set(-1);
    refmodel_rate_metric_.set(-1);
    heartbeat_lag_metric_.set(-1);
}

void Watchdog::set_heartbeat_probe(std::function<double()> probe) {
    std::lock_guard<std::mutex> lock{mutex_};
    probe_ = std::move(probe);
}

HealthVerdict Watchdog::evaluate(const FlightRecorder& recorder) {
    std::lock_guard<std::mutex> lock{mutex_};
    const std::vector<RecorderSnapshot> snapshots =
        recorder.snapshots(config_.baseline_window + config_.recent_window);

    HealthVerdict verdict;
    if (!snapshots.empty()) {
        verdict.sequence = snapshots.back().sequence;
        verdict.wall_time = snapshots.back().wall_time;
        verdict.uptime_seconds = snapshots.back().uptime_seconds;
    }

    // --- assess_p99: recent-median interval p99 vs trailing baseline ---
    {
        HealthSignal signal;
        signal.name = "assess_p99";
        signal.threshold = config_.p99_regression_ratio;
        std::vector<double> baseline;
        std::vector<double> recent;
        const std::size_t recent_begin =
            snapshots.size() > config_.recent_window
                ? snapshots.size() - config_.recent_window
                : 0;
        for (std::size_t i = 0; i < snapshots.size(); ++i) {
            const MetricPoint* point =
                find_point(snapshots[i], config_.assess_metric);
            if (point == nullptr || point->kind != MetricKind::kHistogram ||
                point->interval_count < config_.min_latency_samples) {
                continue;
            }
            (i < recent_begin ? baseline : recent).push_back(point->p99);
        }
        if (baseline.size() < 3 || recent.empty()) {
            signal.detail = config_.assess_metric + ": " +
                            std::to_string(baseline.size()) +
                            " baseline / " + std::to_string(recent.size()) +
                            " recent qualified intervals - not judged";
        } else {
            const double base_p99 = median(baseline);
            const double recent_p99 = median(recent);
            signal.evaluated = base_p99 > 0.0;
            signal.value = base_p99 > 0.0 ? recent_p99 / base_p99 : 0.0;
            signal.firing =
                signal.evaluated && signal.value > config_.p99_regression_ratio;
            signal.detail = config_.assess_metric + " recent p99 " +
                            format_value(recent_p99 * 1e6, "us") + " vs baseline " +
                            format_value(base_p99 * 1e6, "us") + " (ratio " +
                            format_value(signal.value, "") + ", budget " +
                            format_value(config_.p99_regression_ratio, "x)");
        }
        p99_ratio_metric_.set(
            signal.evaluated
                ? static_cast<std::int64_t>(std::lround(signal.value * 100.0))
                : -1);
        verdict.signals.push_back(std::move(signal));
    }

    // --- cache hit-rate collapse -----------------------------------------
    {
        double rate = -1.0;
        verdict.signals.push_back(cache_signal(
            "calibration_hits", snapshots, "hpr_calibration_cache_hits_total",
            "hpr_calibration_cache_misses_total", config_, &rate));
        calibration_rate_metric_.set(
            rate < 0.0 ? -1
                       : static_cast<std::int64_t>(std::lround(rate * 100.0)));
    }
    {
        double rate = -1.0;
        verdict.signals.push_back(cache_signal(
            "refmodel_hits", snapshots, "hpr_refmodel_cache_hits_total",
            "hpr_refmodel_cache_misses_total", config_, &rate));
        refmodel_rate_metric_.set(
            rate < 0.0 ? -1
                       : static_cast<std::int64_t>(std::lround(rate * 100.0)));
    }

    // --- ingest stall ------------------------------------------------------
    {
        HealthSignal signal;
        signal.name = "ingest";
        signal.threshold = static_cast<double>(config_.ingest_stall_intervals);
        const MetricPoint* point =
            snapshots.empty()
                ? nullptr
                : find_point(snapshots.back(), "hpr_store_ingest_total");
        if (point == nullptr || point->kind != MetricKind::kCounter) {
            signal.detail = "hpr_store_ingest_total not recorded - not judged";
        } else {
            if (point->value > last_ingest_total_) {
                flat_intervals_ = 0;
                ingest_seen_ = true;
            } else if (ingest_seen_) {
                ++flat_intervals_;
            }
            last_ingest_total_ = point->value;
            signal.evaluated = ingest_seen_;
            signal.value = static_cast<double>(flat_intervals_);
            signal.firing = ingest_seen_ &&
                            flat_intervals_ >= config_.ingest_stall_intervals;
            signal.detail =
                ingest_seen_
                    ? std::to_string(flat_intervals_) +
                          " consecutive flat intervals (stall at " +
                          std::to_string(config_.ingest_stall_intervals) +
                          "); lifetime ingest " + std::to_string(point->value)
                    : "no ingest observed yet - not judged";
        }
        ingest_stalled_metric_.set(static_cast<std::int64_t>(flat_intervals_));
        verdict.signals.push_back(std::move(signal));
    }

    // --- event-loop heartbeat ---------------------------------------------
    {
        HealthSignal signal;
        signal.name = "heartbeat";
        signal.threshold = config_.heartbeat_lag_budget_seconds;
        double lag = -1.0;
        if (!probe_) {
            signal.detail = "no heartbeat probe installed - not judged";
        } else {
            lag = probe_();
            if (lag < 0.0) {
                signal.detail = "no ping acknowledged yet - not judged";
            } else {
                signal.evaluated = true;
                signal.value = lag;
                signal.firing = lag > config_.heartbeat_lag_budget_seconds;
                signal.detail =
                    "event loop acknowledged self-ping in " +
                    format_value(lag * 1e3, "ms") + " (budget " +
                    format_value(config_.heartbeat_lag_budget_seconds * 1e3,
                                 "ms)");
            }
        }
        heartbeat_lag_metric_.set(
            lag < 0.0 ? -1
                      : static_cast<std::int64_t>(std::lround(lag * 1e6)));
        verdict.signals.push_back(std::move(signal));
    }

    std::int64_t firing = 0;
    for (const HealthSignal& signal : verdict.signals) {
        if (signal.firing) ++firing;
    }
    verdict.healthy = firing == 0;
    ok_metric_.set(verdict.healthy ? 1 : 0);
    firing_metric_.set(firing);
    evaluations_metric_.increment();
    evaluation_count_.fetch_add(1, std::memory_order_relaxed);

    verdict_ = verdict;
    return verdict;
}

HealthVerdict Watchdog::last_verdict() const {
    std::lock_guard<std::mutex> lock{mutex_};
    return verdict_;
}

std::uint64_t Watchdog::evaluations() const noexcept {
    return evaluation_count_.load(std::memory_order_relaxed);
}

std::string to_frame(const HealthVerdict& verdict) {
    std::string out = "{\"type\":\"health\",\"seq\":";
    out += std::to_string(verdict.sequence);
    out += ",\"wall_time\":";
    out += format_double(verdict.wall_time);
    out += ",\"uptime\":";
    out += format_double(verdict.uptime_seconds);
    out += ",\"healthy\":";
    out += verdict.healthy ? "true" : "false";
    out += ",\"signals\":[";
    bool first = true;
    for (const HealthSignal& signal : verdict.signals) {
        if (!first) out += ',';
        first = false;
        out += "{\"name\":\"";
        out += escape_json(signal.name);
        out += "\",\"evaluated\":";
        out += signal.evaluated ? "true" : "false";
        out += ",\"firing\":";
        out += signal.firing ? "true" : "false";
        out += ",\"value\":";
        out += format_double(signal.value);
        out += ",\"threshold\":";
        out += format_double(signal.threshold);
        out += ",\"detail\":\"";
        out += escape_json(signal.detail);
        out += "\"}";
    }
    out += "]}";
    return out;
}

std::string render_blackbox(const FlightRecorder& recorder,
                            const Watchdog* watchdog, Tracer* tracer,
                            std::size_t snapshot_n, std::size_t trace_n) {
    std::string out;
    for (const RecorderSnapshot& snapshot : recorder.snapshots(snapshot_n)) {
        out += to_frame(snapshot);
        out += '\n';
    }
    if (watchdog != nullptr) {
        out += to_frame(watchdog->last_verdict());
        out += '\n';
    }
    if (tracer != nullptr) {
        std::vector<DecisionRecord> records = tracer->ring().snapshot();
        const std::size_t begin =
            records.size() > trace_n ? records.size() - trace_n : 0;
        for (std::size_t i = begin; i < records.size(); ++i) {
            out += "{\"type\":\"trace\",\"record\":";
            out += to_jsonl(records[i]);
            out += "}\n";
        }
    }
    return out;
}

}  // namespace hpr::obs
