#include "obs/trace.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/export.h"

namespace hpr::obs {

namespace {

/// Tracing metrics (aggregated over every tracer in the process).
struct TraceMetrics {
    Counter& sampled;
    Counter& records;
    Counter& evicted;
};

TraceMetrics& trace_metrics() {
    auto& registry = default_registry();
    static TraceMetrics metrics{
        registry.counter("hpr_trace_sampled_total",
                         "Assessments that opened a sampled decision trace"),
        registry.counter("hpr_trace_records_total",
                         "DecisionRecords committed to a trace ring"),
        registry.counter("hpr_trace_evicted_total",
                         "DecisionRecords evicted from a full trace ring"),
    };
    return metrics;
}

/// The innermost sampled context on this thread (obs must not depend on
/// stats, so the sampler's mixer lives here too).
thread_local TraceContext* t_current = nullptr;

std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// 17 significant digits: enough for any double to round-trip exactly
/// through the JSONL dump and back (forensics must not lose precision).
std::string format_double(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

void append_string(std::ostringstream& out, std::string_view key,
                   std::string_view value) {
    out << '"' << key << "\":\"" << escape_json(value) << '"';
}

void append_stage(std::ostringstream& out, const StageEvidence& stage) {
    out << "{\"suffix_length\":" << stage.suffix_length
        << ",\"windows\":" << stage.windows
        << ",\"p_hat\":" << format_double(stage.p_hat)
        << ",\"distance\":" << format_double(stage.distance)
        << ",\"epsilon\":" << format_double(stage.epsilon)
        << ",\"sufficient\":" << (stage.sufficient ? "true" : "false")
        << ",\"passed\":" << (stage.passed ? "true" : "false") << '}';
}

}  // namespace

std::string to_jsonl(const DecisionRecord& record) {
    std::ostringstream out;
    out << "{\"trace_id\":" << record.trace_id << ',';
    append_string(out, "source", record.source);
    out << ",\"server\":" << record.server
        << ",\"wall_time\":" << format_double(record.wall_time) << ',';
    append_string(out, "verdict", record.verdict);
    if (!record.transition.empty()) {
        out << ',';
        append_string(out, "transition", record.transition);
    }
    if (record.trust) {
        out << ",\"trust\":" << format_double(*record.trust);
    }
    out << ',';
    append_string(out, "mode", record.mode);
    out << ",\"collusion_resilient\":" << (record.collusion_resilient ? "true" : "false")
        << ",\"window_size\":" << record.window_size
        << ",\"history_length\":" << record.history_length
        << ",\"p_hat\":" << format_double(record.p_hat)
        << ",\"min_margin\":" << format_double(record.min_margin);
    if (record.failed) {
        out << ",\"failed\":";
        append_stage(out, *record.failed);
    }
    if (record.reorder.applied) {
        out << ",\"reorder\":{\"issuers\":" << record.reorder.issuers
            << ",\"largest_group\":" << record.reorder.largest_group
            << ",\"displaced_fraction\":"
            << format_double(record.reorder.displaced_fraction) << '}';
    }
    if (record.runs.evaluated) {
        out << ",\"runs\":{\"passed\":" << (record.runs.passed ? "true" : "false")
            << ",\"z\":" << format_double(record.runs.z)
            << ",\"z_threshold\":" << format_double(record.runs.z_threshold) << '}';
    }
    out << ",\"stages\":[";
    for (std::size_t i = 0; i < record.stages.size(); ++i) {
        if (i != 0) out << ',';
        append_stage(out, record.stages[i]);
    }
    out << "],\"spans\":[";
    for (std::size_t i = 0; i < record.spans.size(); ++i) {
        const SpanRecord& span = record.spans[i];
        if (i != 0) out << ',';
        out << "{\"name\":\"" << escape_json(span.name)
            << "\",\"depth\":" << span.depth
            << ",\"start\":" << format_double(span.start_seconds)
            << ",\"duration\":" << format_double(span.duration_seconds) << '}';
    }
    out << "]}";
    return out.str();
}

// ---------------------------------------------------------------------------
// JSONL parsing: a minimal recursive-descent scanner for the subset of
// JSON to_jsonl() emits (objects, arrays, strings, numbers, booleans,
// null).  Deliberately hand-rolled — the library vendors no JSON
// dependency, and trace_query must parse dumps robustly.

namespace {

class JsonCursor {
public:
    explicit JsonCursor(std::string_view text) : text_(text) {}

    bool at_end() {
        skip_ws();
        return pos_ == text_.size();
    }

    bool consume(char c) {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool peek_is(char c) {
        skip_ws();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    bool parse_string(std::string& out) {
        skip_ws();
        if (!consume('"')) return false;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ == text_.size()) return false;
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) return false;
                    unsigned value = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        value <<= 4;
                        if (h >= '0' && h <= '9') {
                            value |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            value |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            value |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            return false;
                        }
                    }
                    // to_jsonl only emits \u00XX control escapes; decode
                    // the Latin-1 range and reject the rest.
                    if (value > 0xff) return false;
                    out.push_back(static_cast<char>(value));
                    break;
                }
                default: return false;
            }
        }
        return false;  // unterminated string
    }

    bool parse_number(double& out) {
        skip_ws();
        const std::size_t begin = pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
                c == 'e' || c == 'E') {
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == begin) return false;
        const std::string token{text_.substr(begin, pos_ - begin)};
        char* end = nullptr;
        out = std::strtod(token.c_str(), &end);
        return end == token.c_str() + token.size();
    }

    bool parse_bool(bool& out) {
        skip_ws();
        if (text_.substr(pos_, 4) == "true") {
            pos_ += 4;
            out = true;
            return true;
        }
        if (text_.substr(pos_, 5) == "false") {
            pos_ += 5;
            out = false;
            return true;
        }
        return false;
    }

    /// Skip one well-formed value of any type.
    bool skip_value() {  // NOLINT(misc-no-recursion)
        skip_ws();
        if (pos_ == text_.size()) return false;
        const char c = text_[pos_];
        if (c == '"') {
            std::string ignored;
            return parse_string(ignored);
        }
        if (c == '{') return skip_composite('{', '}');
        if (c == '[') return skip_composite('[', ']');
        if (c == 't' || c == 'f') {
            bool ignored = false;
            return parse_bool(ignored);
        }
        if (text_.substr(pos_, 4) == "null") {
            pos_ += 4;
            return true;
        }
        double ignored = 0.0;
        return parse_number(ignored);
    }

    /// Walk `{"key": value, ...}`, calling `handler(key)` per member; the
    /// handler must consume the value (return false to have it skipped).
    template <typename Handler>
    bool parse_object(Handler&& handler) {  // NOLINT(misc-no-recursion)
        if (!consume('{')) return false;
        if (consume('}')) return true;
        while (true) {
            std::string key;
            if (!parse_string(key) || !consume(':')) return false;
            if (!handler(key)) {
                if (!skip_value()) return false;
            }
            if (consume('}')) return true;
            if (!consume(',')) return false;
        }
    }

    /// Walk `[value, ...]`, calling `handler()` once per element.
    template <typename Handler>
    bool parse_array(Handler&& handler) {
        if (!consume('[')) return false;
        if (consume(']')) return true;
        while (true) {
            if (!handler()) return false;
            if (consume(']')) return true;
            if (!consume(',')) return false;
        }
    }

private:
    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
        }
    }

    bool skip_composite(char open, char close) {  // NOLINT(misc-no-recursion)
        if (!consume(open)) return false;
        if (consume(close)) return true;
        while (true) {
            if (peek_is('"')) {
                std::string ignored;
                if (!parse_string(ignored)) return false;
            } else if (!skip_value()) {
                return false;
            }
            if (consume(close)) return true;
            if (consume(',') || consume(':')) continue;
            return false;
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

bool parse_u64(JsonCursor& cursor, std::uint64_t& out) {
    double value = 0.0;
    if (!cursor.parse_number(value) || value < 0.0) return false;
    out = static_cast<std::uint64_t>(value);
    return true;
}

bool parse_stage(JsonCursor& cursor, StageEvidence& stage) {
    return cursor.parse_object([&](const std::string& key) {
        if (key == "suffix_length") return parse_u64(cursor, stage.suffix_length);
        if (key == "windows") return parse_u64(cursor, stage.windows);
        if (key == "p_hat") return cursor.parse_number(stage.p_hat);
        if (key == "distance") return cursor.parse_number(stage.distance);
        if (key == "epsilon") return cursor.parse_number(stage.epsilon);
        if (key == "sufficient") return cursor.parse_bool(stage.sufficient);
        if (key == "passed") return cursor.parse_bool(stage.passed);
        return false;  // unknown key: skipped by the object walker
    });
}

}  // namespace

bool from_jsonl(std::string_view line, DecisionRecord& out) {
    out = DecisionRecord{};
    JsonCursor cursor{line};
    const bool parsed = cursor.parse_object([&](const std::string& key) {
        if (key == "trace_id") return parse_u64(cursor, out.trace_id);
        if (key == "source") return cursor.parse_string(out.source);
        if (key == "server") return parse_u64(cursor, out.server);
        if (key == "wall_time") return cursor.parse_number(out.wall_time);
        if (key == "verdict") return cursor.parse_string(out.verdict);
        if (key == "transition") return cursor.parse_string(out.transition);
        if (key == "trust") {
            double trust = 0.0;
            if (!cursor.parse_number(trust)) return false;
            out.trust = trust;
            return true;
        }
        if (key == "mode") return cursor.parse_string(out.mode);
        if (key == "collusion_resilient") {
            return cursor.parse_bool(out.collusion_resilient);
        }
        if (key == "window_size") {
            std::uint64_t m = 0;
            if (!parse_u64(cursor, m)) return false;
            out.window_size = static_cast<std::uint32_t>(m);
            return true;
        }
        if (key == "history_length") return parse_u64(cursor, out.history_length);
        if (key == "p_hat") return cursor.parse_number(out.p_hat);
        if (key == "min_margin") return cursor.parse_number(out.min_margin);
        if (key == "failed") {
            StageEvidence stage;
            if (!parse_stage(cursor, stage)) return false;
            out.failed = stage;
            return true;
        }
        if (key == "reorder") {
            out.reorder.applied = true;
            return cursor.parse_object([&](const std::string& sub) {
                if (sub == "issuers") return parse_u64(cursor, out.reorder.issuers);
                if (sub == "largest_group") {
                    return parse_u64(cursor, out.reorder.largest_group);
                }
                if (sub == "displaced_fraction") {
                    return cursor.parse_number(out.reorder.displaced_fraction);
                }
                return false;
            });
        }
        if (key == "runs") {
            out.runs.evaluated = true;
            return cursor.parse_object([&](const std::string& sub) {
                if (sub == "passed") return cursor.parse_bool(out.runs.passed);
                if (sub == "z") return cursor.parse_number(out.runs.z);
                if (sub == "z_threshold") {
                    return cursor.parse_number(out.runs.z_threshold);
                }
                return false;
            });
        }
        if (key == "stages") {
            return cursor.parse_array([&] {
                StageEvidence stage;
                if (!parse_stage(cursor, stage)) return false;
                out.stages.push_back(stage);
                return true;
            });
        }
        if (key == "spans") {
            return cursor.parse_array([&] {
                SpanRecord span;
                const bool ok = cursor.parse_object([&](const std::string& sub) {
                    if (sub == "name") return cursor.parse_string(span.name);
                    if (sub == "depth") {
                        std::uint64_t depth = 0;
                        if (!parse_u64(cursor, depth)) return false;
                        span.depth = static_cast<std::uint32_t>(depth);
                        return true;
                    }
                    if (sub == "start") return cursor.parse_number(span.start_seconds);
                    if (sub == "duration") {
                        return cursor.parse_number(span.duration_seconds);
                    }
                    return false;
                });
                if (!ok) return false;
                out.spans.push_back(std::move(span));
                return true;
            });
        }
        return false;  // unknown key: skipped (forward compatibility)
    });
    return parsed && cursor.at_end();
}

// ---------------------------------------------------------------------------
// TraceRing

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) {
        throw std::invalid_argument("TraceRing: capacity must be positive");
    }
    slots_.resize(capacity_);
}

void TraceRing::push(DecisionRecord&& record) {
    bool did_evict = false;
    {
        const std::scoped_lock lock{mutex_};
        if (size_ == capacity_) {
            // Full: overwrite the oldest slot and advance the head.
            slots_[head_] = std::move(record);
            head_ = (head_ + 1) % capacity_;
            ++evicted_;
            did_evict = true;
        } else {
            slots_[(head_ + size_) % capacity_] = std::move(record);
            ++size_;
        }
        ++pushed_;
    }
    if (did_evict) trace_metrics().evicted.increment();
}

std::vector<DecisionRecord> TraceRing::drain() {
    const std::scoped_lock lock{mutex_};
    std::vector<DecisionRecord> drained;
    drained.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) {
        drained.push_back(std::move(slots_[(head_ + i) % capacity_]));
    }
    head_ = 0;
    size_ = 0;
    return drained;
}

std::vector<DecisionRecord> TraceRing::snapshot() const {
    const std::scoped_lock lock{mutex_};
    std::vector<DecisionRecord> records;
    records.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) {
        records.push_back(slots_[(head_ + i) % capacity_]);
    }
    return records;
}

std::size_t TraceRing::size() const {
    const std::scoped_lock lock{mutex_};
    return size_;
}

std::uint64_t TraceRing::pushed() const {
    const std::scoped_lock lock{mutex_};
    return pushed_;
}

std::uint64_t TraceRing::evicted() const {
    const std::scoped_lock lock{mutex_};
    return evicted_;
}

// ---------------------------------------------------------------------------
// Tracer

namespace {

/// Sampling threshold: compare the top 32 bits of the id hash against
/// rate * 2^32 (32-bit resolution is ample for a sampling knob, and the
/// arithmetic stays exact in double).
std::uint64_t rate_to_threshold(double rate) noexcept {
    if (!(rate > 0.0)) return 0;             // also maps NaN to "never"
    if (rate >= 1.0) return 1ULL << 32;      // above any 32-bit hash: always
    return static_cast<std::uint64_t>(rate * 4294967296.0);
}

}  // namespace

Tracer::Tracer(TracerConfig config)
    : config_(config),
      enabled_(config.enabled),
      span_stages_(config.span_stages),
      rate_threshold_(rate_to_threshold(config.sample_rate)),
      ring_(config.ring_capacity) {}

void Tracer::set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
}

bool Tracer::active() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
}

void Tracer::set_sample_rate(double rate) noexcept {
    rate_threshold_.store(rate_to_threshold(rate), std::memory_order_relaxed);
}

double Tracer::sample_rate() const noexcept {
    const std::uint64_t threshold = rate_threshold_.load(std::memory_order_relaxed);
    return std::min(1.0, static_cast<double>(threshold) / 4294967296.0);
}

void Tracer::set_span_stages(bool enabled) noexcept {
    span_stages_.store(enabled, std::memory_order_relaxed);
}

bool Tracer::span_stages() const noexcept {
    return span_stages_.load(std::memory_order_relaxed);
}

std::uint64_t Tracer::next_trace_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
}

bool Tracer::sampled(std::uint64_t trace_id) const noexcept {
    const std::uint64_t threshold = rate_threshold_.load(std::memory_order_relaxed);
    if (threshold == 0) return false;
    if (threshold >= (1ULL << 32)) return true;
    return (splitmix64(config_.seed ^ trace_id) >> 32) < threshold;
}

Tracer& default_tracer() {
    static Tracer* tracer = new Tracer();  // leaked: see default_registry()
    return *tracer;
}

// ---------------------------------------------------------------------------
// TraceContext / TraceSpan

TraceContext::TraceContext(Tracer& tracer, std::uint64_t server,
                           std::string_view source) {
    if (!enabled() || !tracer.active()) return;
    const std::uint64_t id = tracer.next_trace_id();
    if (!tracer.sampled(id)) return;
    tracer_ = &tracer;
    span_stages_ = tracer.span_stages();
    record_.emplace();
    record_->trace_id = id;
    record_->server = server;
    record_->source = source;
    record_->wall_time =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    prev_ = t_current;
    t_current = this;
    watch_.restart();
    trace_metrics().sampled.increment();
}

TraceContext::~TraceContext() {
    if (!record_) return;
    t_current = prev_;
    tracer_->ring().push(std::move(*record_));
    trace_metrics().records.increment();
}

TraceContext* TraceContext::current() noexcept {
    if (!enabled()) return nullptr;
    return t_current;
}

double TraceContext::elapsed_seconds() const {
    return record_ ? watch_.seconds() : 0.0;
}

void TraceSpan::open(const char* name) noexcept {
    TraceContext* context = TraceContext::current();
    if (context == nullptr) return;
    context_ = context;
    name_ = name;
    depth_ = context->open_depth_++;
    start_ = context->watch_.seconds();
}

void TraceSpan::close() noexcept {
    --context_->open_depth_;
    context_->record_->spans.push_back(SpanRecord{
        name_, depth_, start_, context_->watch_.seconds() - start_});
}

}  // namespace hpr::obs
