#ifndef HPR_NET_INGEST_H
#define HPR_NET_INGEST_H

/// \file ingest.h
/// The write half of the serving layer: network feedback ingest with
/// admission control, and wire-level assessment queries.
///
/// ROADMAP item 1's read half (live introspection pages) went in first;
/// this file adds the part the paper's deployment story actually hinges
/// on — "heavy traffic from millions of users" arriving *over the
/// network* and being screened online.  Two pieces:
///
/// **IngestGate — backpressure before buffering.**  The epoll front-end
/// charges every POST against the gate at header-parse time, from the
/// declared Content-Length, *before* a single body byte is buffered:
///
///     estimated records = body_bytes / kMinRecordBytes + 1
///
/// (`kMinRecordBytes` is the shortest well-formed record, "1 1 1\n").
/// The gate holds a bounded pending-records budget with two watermarks:
///
///  * below the **soft watermark** every request is admitted;
///  * between soft and hard, only *small* requests (at most
///    `large_request_records`) are admitted — large batches are shed
///    first because they are the cheapest load to push back on and the
///    likeliest to blow the budget;
///  * at or above the **hard watermark**, everything is shed;
///  * a request whose estimate alone would overflow the budget is shed
///    outright (hard overflow), whatever the watermarks say.
///
/// A shed request draws `429 Too Many Requests` with a `Retry-After`
/// header.  The charge is released exactly once — when the request is
/// dispatched to the handler or when its connection dies — so a client
/// disconnecting mid-body can never leak budget (the stress suite
/// asserts pending returns to zero).
///
/// **IngestService — the protocol endpoints.**
///
///  * `POST /ingest` accepts a compact line-oriented batch, one record
///    per line: `server_id timestamp outcome` (outcome 0 = negative,
///    1 = positive, 2 = neutral; client id is recorded as 0 — the wire
///    protocol carries no issuer identity).  The parser is strict:
///    exactly three space-separated decimal fields, LF line endings, no
///    blank lines; the first malformed line rejects the request with
///    `400` naming that line.  Parsed batches go to
///    `FeedbackStore::ingest_batch`, which is all-or-nothing across the
///    whole batch — an out-of-order timestamp anywhere leaves the store
///    byte-identical (`400` with the offending line).  Accepted records
///    are streamed into the `serve::BatchAssessor` screener bank, so a
///    subsequent `/assess` sees them immediately.
///  * `GET /assess?server=<id>` answers the two-phase verdict from the
///    streaming bank (with batch fallback), as a small key-value page.
///  * `GET /ingest/stats` exposes the gate's live budget, watermarks,
///    and shed counters.
///
/// Everything is instrumented through the obs registry
/// (`hpr_ingest_gate_*`, `hpr_ingest_http_*`, `hpr_assess_http_*`);
/// metrics are registered at construction so a zero-traffic scrape
/// already lists them (the metric-inventory CI check depends on that).
///
/// Thread-safety: IngestGate is lock-free atomics, callable from any
/// thread.  IngestService handlers are thread-safe because their
/// substrates are (sharded FeedbackStore, lock-striped BatchAssessor).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "net/http_server.h"
#include "obs/introspection.h"
#include "obs/metrics.h"
#include "repsys/store.h"
#include "serve/batch_assessor.h"

namespace hpr::net {

/// Admission policy knobs (see the file comment for the model).
struct IngestGateConfig {
    /// Pending-records budget: the estimated records of all admitted but
    /// not-yet-dispatched requests never exceed this.
    std::size_t pending_budget = std::size_t{1} << 16;

    /// Watermarks as fractions of the budget, 0 <= soft <= hard <= 1.
    double soft_watermark = 0.5;
    double hard_watermark = 0.9;

    /// In the soft zone, requests estimated above this many records are
    /// shed while smaller ones still pass.
    std::size_t large_request_records = 1024;

    /// Advertised in the Retry-After header of every 429.
    int retry_after_seconds = 1;
};

/// Bounded pending-records budget with watermark admission.  Lock-free;
/// every mutation also updates the hpr_ingest_gate_* metrics.
class IngestGate {
public:
    /// Shortest well-formed ingest record, "1 1 1\n" — the divisor of
    /// the worst-case record estimate.
    static constexpr std::size_t kMinRecordBytes = 6;

    /// Worst-case records a body of `body_bytes` could carry.
    [[nodiscard]] static std::size_t estimate_records(
        std::size_t body_bytes) noexcept {
        return body_bytes / kMinRecordBytes + 1;
    }

    explicit IngestGate(IngestGateConfig config = {});

    IngestGate(const IngestGate&) = delete;
    IngestGate& operator=(const IngestGate&) = delete;

    /// Try to admit a request estimated at `records`; true charges the
    /// budget (pair with exactly one release), false means shed (429).
    [[nodiscard]] bool try_admit(std::size_t records) noexcept;

    /// Return an admitted request's charge to the budget.
    void release(std::size_t records) noexcept;

    [[nodiscard]] std::size_t pending() const noexcept {
        return pending_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] int retry_after_seconds() const noexcept {
        return config_.retry_after_seconds;
    }
    [[nodiscard]] const IngestGateConfig& config() const noexcept {
        return config_;
    }

    /// Resolved watermark levels, in records.
    [[nodiscard]] std::size_t soft_records() const noexcept { return soft_records_; }
    [[nodiscard]] std::size_t hard_records() const noexcept { return hard_records_; }

    /// Lifetime totals.
    [[nodiscard]] std::uint64_t admitted() const noexcept {
        return admitted_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t admitted_records() const noexcept {
        return admitted_records_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t released_records() const noexcept {
        return released_records_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t shed_soft() const noexcept {
        return shed_soft_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t shed_hard() const noexcept {
        return shed_hard_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t shed_overflow() const noexcept {
        return shed_overflow_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t shed_total() const noexcept {
        return shed_soft() + shed_hard() + shed_overflow();
    }

private:
    struct Metrics;

    IngestGateConfig config_;
    std::size_t soft_records_ = 0;
    std::size_t hard_records_ = 0;
    Metrics* metrics_;  ///< registry-owned, never null

    std::atomic<std::size_t> pending_{0};
    std::atomic<std::uint64_t> admitted_{0};
    std::atomic<std::uint64_t> admitted_records_{0};
    std::atomic<std::uint64_t> released_records_{0};
    std::atomic<std::uint64_t> shed_soft_{0};
    std::atomic<std::uint64_t> shed_hard_{0};
    std::atomic<std::uint64_t> shed_overflow_{0};
};

struct IngestServiceConfig {
    /// Per-request record cap: a parsed batch with more records draws
    /// 413 (the byte-level cap is the server's max_body_bytes).
    std::size_t max_records_per_request = 8192;

    /// Admission policy of the embedded gate.
    IngestGateConfig gate{};
};

/// The ingest/assess endpoints over a FeedbackStore and its screener
/// bank.  Non-owning references: store and assessor must outlive the
/// service (and the server serving it).
class IngestService {
public:
    IngestService(repsys::FeedbackStore& store, serve::BatchAssessor& assessor,
                  IngestServiceConfig config = {});

    IngestService(const IngestService&) = delete;
    IngestService& operator=(const IngestService&) = delete;

    /// The gate to hand to HttpServerConfig::ingest_gate.
    [[nodiscard]] IngestGate& gate() noexcept { return gate_; }
    [[nodiscard]] const IngestGate& gate() const noexcept { return gate_; }

    /// POST /ingest: parse, validate, ingest all-or-nothing, stream into
    /// the screener bank.  200 "accepted=<n>", 400 on the first bad
    /// line, 413 over the record cap.
    [[nodiscard]] HttpResponse handle_ingest(const HttpRequest& request);

    /// GET /assess?server=<id> as an introspection page.
    [[nodiscard]] obs::IntrospectionPage assess_page(
        const obs::IntrospectionRequest& request);

    /// GET /ingest/stats: live gate + service counters.
    [[nodiscard]] obs::IntrospectionPage stats_page(
        const obs::IntrospectionRequest& request) const;

    [[nodiscard]] const IngestServiceConfig& config() const noexcept {
        return config_;
    }

    /// Lifetime totals of this service instance.
    [[nodiscard]] std::uint64_t accepted_requests() const noexcept {
        return accepted_requests_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t accepted_records() const noexcept {
        return accepted_records_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t rejected_requests() const noexcept {
        return rejected_requests_.load(std::memory_order_relaxed);
    }

private:
    struct Metrics;

    IngestServiceConfig config_;
    repsys::FeedbackStore& store_;
    serve::BatchAssessor& assessor_;
    IngestGate gate_;
    Metrics* metrics_;  ///< registry-owned, never null

    std::atomic<std::uint64_t> accepted_requests_{0};
    std::atomic<std::uint64_t> accepted_records_{0};
    std::atomic<std::uint64_t> rejected_requests_{0};
};

/// Parse one ingest body into feedbacks.  On failure returns false and
/// fills `error` with "line <n>: <reason>" (1-based).  Exposed for the
/// protocol fuzz suite; handle_ingest is the normal entry point.
[[nodiscard]] bool parse_ingest_body(const std::string& body,
                                     std::vector<repsys::Feedback>& out,
                                     std::string& error);

/// Register GET /assess and GET /ingest/stats on the tree.  The service
/// must outlive the tree's use.
void register_ingest(obs::IntrospectionTree& tree, IngestService& service);

}  // namespace hpr::net

#endif  // HPR_NET_INGEST_H
