#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <stdexcept>

#include "net/ingest.h"
#include "obs/metrics.h"

namespace hpr::net {

namespace {

using Clock = std::chrono::steady_clock;

struct HttpMetrics {
    obs::Counter& accepted;
    obs::Counter& requests;
    obs::Counter& responses;
    obs::Counter& rejected;
    obs::Counter& timeouts;
    obs::Counter& malformed;
    obs::Counter& oversized;
    obs::Counter& shed;
    obs::Counter& bytes_sent;
    obs::Gauge& active;
    obs::Histogram& request_seconds;
};

HttpMetrics& http_metrics() {
    auto& registry = obs::default_registry();
    static HttpMetrics metrics{
        registry.counter("hpr_http_accepted_total",
                         "TCP connections accepted by the introspection front-end"),
        registry.counter("hpr_http_requests_total",
                         "HTTP requests parsed and dispatched to a handler"),
        registry.counter("hpr_http_responses_total",
                         "HTTP responses written (including error pages)"),
        registry.counter("hpr_http_rejected_total",
                         "Connections answered 503 by admission control"),
        registry.counter("hpr_http_timeouts_total",
                         "Connections closed by the request timeout (408)"),
        registry.counter("hpr_http_malformed_total",
                         "Requests rejected as malformed or unsupported (400/405/431)"),
        registry.counter("hpr_http_oversized_total",
                         "POSTs rejected 413: declared body beyond max_body_bytes"),
        registry.counter("hpr_http_shed_total",
                         "POSTs answered 429 on behalf of the ingest gate"),
        registry.counter("hpr_http_bytes_sent_total",
                         "Response bytes written to scrape clients"),
        registry.gauge("hpr_http_active_connections",
                       "Connections currently held by the front-end"),
        registry.histogram("hpr_http_request_seconds",
                           "Scrape latency: request parsed to response flushed"),
    };
    return metrics;
}

bool equals_ignore_case(std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto lower = [](char c) {
            return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
        };
        if (lower(a[i]) != lower(b[i])) return false;
    }
    return true;
}

/// Serialize a response.  HEAD keeps the Content-Length of the body it
/// suppresses, per RFC 9110.
std::string serialize_response(const HttpResponse& response, bool head_only) {
    std::string out;
    out.reserve(response.body.size() + 128);
    out += "HTTP/1.1 ";
    out += std::to_string(response.status);
    out += ' ';
    out += status_reason(response.status);
    out += "\r\nContent-Type: ";
    out += response.content_type;
    out += "\r\nContent-Length: ";
    out += std::to_string(response.body.size());
    out += "\r\nConnection: close\r\n";
    for (const auto& [name, value] : response.extra_headers) {
        out += name;
        out += ": ";
        out += value;
        out += "\r\n";
    }
    out += "\r\n";
    if (!head_only) out += response.body;
    return out;
}

HttpResponse error_page(int status, std::string_view detail) {
    HttpResponse response;
    response.status = status;
    response.body = std::to_string(status);
    response.body += ' ';
    response.body += status_reason(status);
    if (!detail.empty()) {
        response.body += ": ";
        response.body += detail;
    }
    response.body += '\n';
    return response;
}

enum class ParseResult { kIncomplete, kOk, kMalformed, kUnsupportedMethod };

/// Parse a complete request-line + header block (terminated by CRLFCRLF)
/// out of `in`.  Strict CRLF framing: this is a machine endpoint, and
/// every real client (curl, wget, Prometheus) sends CRLF.
ParseResult parse_request(const std::string& in, HttpRequest& request) {
    const std::size_t end = in.find("\r\n\r\n");
    if (end == std::string::npos) return ParseResult::kIncomplete;
    const std::string_view head{in.data(), end};

    const std::size_t line_end = head.find("\r\n");
    const std::string_view request_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);
    const std::size_t sp1 = request_line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? std::string_view::npos
                                      : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        sp1 == 0 || sp2 == sp1 + 1 ||
        request_line.find(' ', sp2 + 1) != std::string_view::npos) {
        return ParseResult::kMalformed;
    }
    const std::string_view method = request_line.substr(0, sp1);
    const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string_view version = request_line.substr(sp2 + 1);
    if (version != "HTTP/1.1" && version != "HTTP/1.0") {
        return ParseResult::kMalformed;
    }
    if (target.empty() || target.front() != '/') return ParseResult::kMalformed;
    if (method != "GET" && method != "HEAD" && method != "POST") {
        return ParseResult::kUnsupportedMethod;
    }

    request.method = std::string{method};
    request.target = std::string{target};
    const std::size_t qmark = target.find('?');
    request.path = std::string{target.substr(0, qmark)};
    request.query = qmark == std::string_view::npos
                        ? std::string{}
                        : std::string{target.substr(qmark + 1)};

    std::string_view rest =
        line_end == std::string_view::npos ? std::string_view{}
                                           : head.substr(line_end + 2);
    while (!rest.empty()) {
        const std::size_t eol = rest.find("\r\n");
        const std::string_view line =
            eol == std::string_view::npos ? rest : rest.substr(0, eol);
        rest = eol == std::string_view::npos ? std::string_view{}
                                             : rest.substr(eol + 2);
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos || colon == 0) {
            return ParseResult::kMalformed;
        }
        std::string_view value = line.substr(colon + 1);
        while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
            value.remove_prefix(1);
        }
        while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
            value.remove_suffix(1);
        }
        request.headers.emplace_back(std::string{line.substr(0, colon)},
                                     std::string{value});
    }
    return ParseResult::kOk;
}

}  // namespace

std::optional<std::string> HttpRequest::header(std::string_view name) const {
    for (const auto& [key, value] : headers) {
        if (equals_ignore_case(key, name)) return value;
    }
    return std::nullopt;
}

const char* status_reason(int status) noexcept {
    switch (status) {
        case 200: return "OK";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 408: return "Request Timeout";
        case 411: return "Length Required";
        case 413: return "Payload Too Large";
        case 429: return "Too Many Requests";
        case 431: return "Request Header Fields Too Large";
        case 501: return "Not Implemented";
        case 500: return "Internal Server Error";
        case 503: return "Service Unavailable";
        default: return "Unknown";
    }
}

/// Per-connection state machine: reading until the header block (and,
/// for POST, the declared body) is complete, then flushing one
/// serialized response, then close.
struct HttpServer::Connection {
    int fd = -1;
    std::string in;
    std::string out;
    std::size_t out_written = 0;
    bool writing = false;
    bool dispatched = false;  ///< response came from the handler (not an error page)
    bool headers_done = false;  ///< request (sans body) parsed into `request`
    HttpRequest request;        ///< valid once headers_done
    std::size_t body_start = 0;   ///< offset of the body in `in`
    std::size_t body_length = 0;  ///< declared Content-Length
    std::size_t gate_charge = 0;  ///< unreleased ingest-gate records, 0 = none
    Clock::time_point deadline;
    Clock::time_point parsed_at;
};

HttpServer::HttpServer(HttpServerConfig config, HttpHandler handler)
    : config_(std::move(config)), handler_(std::move(handler)) {
    if (handler_ == nullptr) {
        throw std::invalid_argument("HttpServer: handler must not be null");
    }
    if (config_.max_connections == 0) config_.max_connections = 1;
    if (config_.max_request_bytes < 64) config_.max_request_bytes = 64;
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::close_listener() {
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void HttpServer::start() {
    if (running()) throw std::runtime_error("HttpServer: already running");
    stop_requested_.store(false, std::memory_order_release);

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
        throw std::runtime_error(std::string{"HttpServer: socket: "} +
                                 std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bind_address.c_str(), &address.sin_addr) != 1) {
        close_listener();
        throw std::runtime_error("HttpServer: invalid bind address '" +
                                 config_.bind_address + "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
               sizeof address) != 0) {
        const std::string error = std::strerror(errno);
        close_listener();
        throw std::runtime_error("HttpServer: bind " + config_.bind_address + ":" +
                                 std::to_string(config_.port) + ": " + error);
    }
    if (::listen(listen_fd_, config_.backlog) != 0) {
        const std::string error = std::strerror(errno);
        close_listener();
        throw std::runtime_error("HttpServer: listen: " + error);
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) != 0) {
        const std::string error = std::strerror(errno);
        close_listener();
        throw std::runtime_error("HttpServer: getsockname: " + error);
    }
    port_ = ntohs(bound.sin_port);

    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (wake_fd_ < 0 || epoll_fd_ < 0) {
        const std::string error = std::strerror(errno);
        close_listener();
        if (wake_fd_ >= 0) ::close(wake_fd_);
        if (epoll_fd_ >= 0) ::close(epoll_fd_);
        wake_fd_ = epoll_fd_ = -1;
        throw std::runtime_error("HttpServer: eventfd/epoll_create1: " + error);
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = listen_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event);
    event.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event);

    running_.store(true, std::memory_order_release);
    loop_ = std::thread([this] { run_loop(); });
}

void HttpServer::request_stop() noexcept {
    stop_requested_.store(true, std::memory_order_release);
    if (wake_fd_ >= 0) {
        // The only wake mechanism: a single write(2), which is on the
        // async-signal-safe list — signal handlers call this directly.
        const std::uint64_t one = 1;
        [[maybe_unused]] const ssize_t written =
            ::write(wake_fd_, &one, sizeof one);
    }
}

bool HttpServer::ping() noexcept {
    if (!running()) return false;
    const std::uint64_t now_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
    std::uint64_t expected = 0;
    // One measurement in flight at a time: a second ping while the
    // first is unacknowledged would make the ack ambiguous.
    if (!ping_sent_ns_.compare_exchange_strong(expected, now_ns,
                                               std::memory_order_acq_rel)) {
        return false;
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t written =
        ::write(wake_fd_, &one, sizeof one);
    return true;
}

double HttpServer::ping_lag_seconds() const noexcept {
    const std::int64_t lag_ns = ping_lag_ns_.load(std::memory_order_acquire);
    return lag_ns < 0 ? -1.0 : static_cast<double>(lag_ns) * 1e-9;
}

void HttpServer::stop() {
    request_stop();
    if (loop_.joinable()) loop_.join();
    running_.store(false, std::memory_order_release);
    close_listener();
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
}

void HttpServer::run_loop() {
    HttpMetrics& metrics = http_metrics();
    std::map<int, Connection> connections;
    // Rejected (503) sockets lingering until the client's request bytes
    // are drained: closing with unread input would RST the error page out
    // of the peer's receive buffer.  fd → reap deadline.
    std::map<int, Clock::time_point> discarding;
    bool draining = false;
    Clock::time_point drain_deadline{};
    const auto request_timeout = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(config_.request_timeout_seconds));

    /// Return a connection's unreleased ingest-gate charge.  Exactly-once
    /// by construction: every path that hands the charge back zeroes it.
    const auto release_charge = [&](Connection& conn) {
        if (conn.gate_charge != 0 && config_.ingest_gate != nullptr) {
            config_.ingest_gate->release(conn.gate_charge);
        }
        conn.gate_charge = 0;
    };

    const auto close_connection = [&](int fd) {
        if (const auto it = connections.find(fd); it != connections.end()) {
            release_charge(it->second);
            connections.erase(it);
            metrics.active.sub(1);
        }
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
        ::close(fd);
    };

    /// Refuse a request whose body may still be in flight (413/429/411/
    /// 501): best-effort answer, FIN our side, then linger draining the
    /// peer's bytes so the error page survives its send queue — the same
    /// mechanism the 503 admission path uses.
    const auto reject_linger = [&](Connection& conn, const HttpResponse& page) {
        release_charge(conn);
        const std::string bytes = serialize_response(page, false);
        const ssize_t sent =
            ::send(conn.fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
        if (sent > 0) {
            bytes_sent_.fetch_add(static_cast<std::uint64_t>(sent),
                                  std::memory_order_relaxed);
            metrics.bytes_sent.increment(static_cast<std::uint64_t>(sent));
        }
        ::shutdown(conn.fd, SHUT_WR);
        metrics.responses.increment();
        const int fd = conn.fd;
        discarding.emplace(fd, Clock::now() + request_timeout);
        connections.erase(fd);
        metrics.active.sub(1);
    };

    /// Queue `bytes` on the connection and opportunistically flush; true
    /// when fully written (caller closes), false when EPOLLOUT is armed.
    const auto send_response = [&](Connection& conn, std::string bytes) {
        conn.out = std::move(bytes);
        conn.out_written = 0;
        conn.writing = true;
        conn.in.clear();
        while (conn.out_written < conn.out.size()) {
            const ssize_t n =
                ::send(conn.fd, conn.out.data() + conn.out_written,
                       conn.out.size() - conn.out_written, MSG_NOSIGNAL);
            if (n > 0) {
                conn.out_written += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                epoll_event event{};
                event.events = EPOLLOUT;
                event.data.fd = conn.fd;
                ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &event);
                return false;
            }
            return true;  // peer gone; caller closes
        }
        return true;
    };

    const auto finish_response = [&](Connection& conn) {
        bytes_sent_.fetch_add(conn.out_written, std::memory_order_relaxed);
        metrics.bytes_sent.increment(conn.out_written);
        metrics.responses.increment();
        requests_.fetch_add(1, std::memory_order_relaxed);
        if (conn.dispatched) {
            metrics.request_seconds.observe(
                std::chrono::duration<double>(Clock::now() - conn.parsed_at)
                    .count());
        }
        close_connection(conn.fd);
    };

    /// Parse-and-dispatch as input arrives: headers exactly once, then
    /// the body admission decisions, then wait for the declared body,
    /// then dispatch.  May finish (and erase) the connection or move it
    /// to the discarding set; callers must re-find it afterwards.
    const auto advance_reading = [&](Connection& conn) {
        if (!conn.headers_done) {
            const std::size_t head_end = conn.in.find("\r\n\r\n");
            // The header byte bound applies whether or not the block
            // ever completes — a finished-but-huge header section is
            // just as rejected as a dribbling one.
            if (head_end == std::string::npos
                    ? conn.in.size() > config_.max_request_bytes
                    : head_end > config_.max_request_bytes) {
                malformed_.fetch_add(1, std::memory_order_relaxed);
                metrics.malformed.increment();
                if (send_response(
                        conn, serialize_response(error_page(431, {}), false))) {
                    finish_response(conn);
                }
                return;
            }
            if (head_end == std::string::npos) return;  // keep reading
            HttpRequest request;
            const ParseResult parsed = parse_request(conn.in, request);
            if (parsed == ParseResult::kIncomplete) return;
            if (parsed != ParseResult::kOk) {
                malformed_.fetch_add(1, std::memory_order_relaxed);
                metrics.malformed.increment();
                const int status = parsed == ParseResult::kMalformed ? 400 : 405;
                if (send_response(
                        conn,
                        serialize_response(error_page(status, {}), false))) {
                    finish_response(conn);
                }
                return;
            }
            conn.request = std::move(request);
            conn.headers_done = true;
            conn.body_start = head_end + 4;
            conn.body_length = 0;

            const auto content_length = conn.request.header("Content-Length");
            if (conn.request.method == "POST") {
                // Body admission runs before a single body byte is
                // required, so refusals (411/501/400/413/429) answer
                // while the peer may still be sending: linger-drain.
                if (conn.request.header("Transfer-Encoding")) {
                    malformed_.fetch_add(1, std::memory_order_relaxed);
                    metrics.malformed.increment();
                    reject_linger(conn,
                                  error_page(501, "Transfer-Encoding"));
                    return;
                }
                if (!content_length) {
                    malformed_.fetch_add(1, std::memory_order_relaxed);
                    metrics.malformed.increment();
                    reject_linger(conn, error_page(411, {}));
                    return;
                }
                bool digits = !content_length->empty() &&
                              content_length->size() <= 18;
                for (const char c : *content_length) {
                    if (c < '0' || c > '9') digits = false;
                }
                if (!digits) {
                    malformed_.fetch_add(1, std::memory_order_relaxed);
                    metrics.malformed.increment();
                    reject_linger(conn,
                                  error_page(400, "bad Content-Length"));
                    return;
                }
                const std::size_t declared = static_cast<std::size_t>(
                    std::strtoull(content_length->c_str(), nullptr, 10));
                if (declared > config_.max_body_bytes) {
                    oversized_.fetch_add(1, std::memory_order_relaxed);
                    metrics.oversized.increment();
                    reject_linger(conn, error_page(413, {}));
                    return;
                }
                conn.body_length = declared;
                if (config_.ingest_gate != nullptr) {
                    const std::size_t estimate =
                        IngestGate::estimate_records(conn.body_length);
                    if (!config_.ingest_gate->try_admit(estimate)) {
                        shed_.fetch_add(1, std::memory_order_relaxed);
                        metrics.shed.increment();
                        HttpResponse page =
                            error_page(429, "ingest budget exhausted");
                        page.extra_headers.emplace_back(
                            "Retry-After",
                            std::to_string(
                                config_.ingest_gate->retry_after_seconds()));
                        reject_linger(conn, page);
                        return;
                    }
                    conn.gate_charge = estimate;
                }
            } else if (content_length && *content_length != "0") {
                malformed_.fetch_add(1, std::memory_order_relaxed);
                metrics.malformed.increment();
                reject_linger(conn, error_page(400, "unexpected request body"));
                return;
            }
        }
        if (conn.in.size() < conn.body_start + conn.body_length) {
            return;  // keep reading the body
        }
        conn.request.body.assign(conn.in, conn.body_start, conn.body_length);
        conn.parsed_at = Clock::now();
        conn.dispatched = true;
        conn.deadline = conn.parsed_at + request_timeout;
        metrics.requests.increment();
        HttpResponse response;
        try {
            response = handler_(conn.request);
        } catch (const std::exception& error) {
            response = error_page(500, error.what());
        } catch (...) {
            response = error_page(500, {});
        }
        // Dispatched: the request's records are the handler's (and the
        // store's) problem now, not pending load — return the charge.
        release_charge(conn);
        if (send_response(conn,
                          serialize_response(response,
                                             conn.request.method == "HEAD"))) {
            finish_response(conn);
        }
    };

    epoll_event events[64];
    while (true) {
        if (stop_requested_.load(std::memory_order_acquire) && !draining) {
            draining = true;
            drain_deadline =
                Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       config_.drain_timeout_seconds));
            ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        }
        if (draining && connections.empty() && discarding.empty()) break;

        // Wait until the next connection (or drain) deadline.
        const Clock::time_point now = Clock::now();
        Clock::time_point next = now + std::chrono::seconds{1};
        for (const auto& [fd, conn] : connections) {
            if (conn.deadline < next) next = conn.deadline;
        }
        for (const auto& [fd, deadline] : discarding) {
            if (deadline < next) next = deadline;
        }
        if (draining && drain_deadline < next) next = drain_deadline;
        const auto wait_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(next - now)
                .count();
        const int timeout_ms =
            wait_ms < 0 ? 0 : static_cast<int>(wait_ms > 1000 ? 1000 : wait_ms);
        const int ready = ::epoll_wait(
            epoll_fd_, events, static_cast<int>(std::size(events)),
            connections.empty() && discarding.empty() && !draining
                ? -1
                : timeout_ms);
        if (ready < 0 && errno != EINTR) break;

        for (int i = 0; i < (ready < 0 ? 0 : ready); ++i) {
            const int fd = events[i].data.fd;
            if (fd == wake_fd_) {
                std::uint64_t drained = 0;
                [[maybe_unused]] const ssize_t n =
                    ::read(wake_fd_, &drained, sizeof drained);
                const std::uint64_t sent_ns =
                    ping_sent_ns_.exchange(0, std::memory_order_acq_rel);
                if (sent_ns != 0) {
                    const std::uint64_t now_ns = static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            Clock::now().time_since_epoch())
                            .count());
                    ping_lag_ns_.store(
                        now_ns >= sent_ns
                            ? static_cast<std::int64_t>(now_ns - sent_ns)
                            : 0,
                        std::memory_order_release);
                    pings_acked_.fetch_add(1, std::memory_order_relaxed);
                }
                continue;
            }
            if (fd == listen_fd_) {
                while (!draining) {
                    const int client = ::accept4(listen_fd_, nullptr, nullptr,
                                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
                    if (client < 0) {
                        if (errno == EINTR) continue;
                        break;  // EAGAIN or transient accept failure
                    }
                    metrics.accepted.increment();
                    if (connections.size() >= config_.max_connections) {
                        // Admission control: the scraper sees an explicit
                        // 503 instead of an unbounded queue.  Best-effort
                        // write — the canned page fits any socket buffer —
                        // then a lingering close (FIN now, reap once the
                        // peer's request bytes are drained or on deadline).
                        const std::string page =
                            serialize_response(error_page(503, {}), false);
                        [[maybe_unused]] const ssize_t sent = ::send(
                            client, page.data(), page.size(), MSG_NOSIGNAL);
                        ::shutdown(client, SHUT_WR);
                        epoll_event reject_event{};
                        reject_event.events = EPOLLIN;
                        reject_event.data.fd = client;
                        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client,
                                        &reject_event) == 0) {
                            discarding.emplace(client,
                                               Clock::now() + request_timeout);
                        } else {
                            ::close(client);
                        }
                        rejected_.fetch_add(1, std::memory_order_relaxed);
                        metrics.rejected.increment();
                        metrics.responses.increment();
                        continue;
                    }
                    const int one = 1;
                    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one,
                                 sizeof one);
                    epoll_event event{};
                    event.events = EPOLLIN;
                    event.data.fd = client;
                    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client, &event);
                    Connection conn;
                    conn.fd = client;
                    conn.deadline = Clock::now() + request_timeout;
                    connections.emplace(client, std::move(conn));
                    metrics.active.add(1);
                }
                continue;
            }
            if (const auto linger = discarding.find(fd);
                linger != discarding.end()) {
                char sink[1024];
                ssize_t n;
                while ((n = ::recv(fd, sink, sizeof sink, 0)) > 0) {}
                const bool gone =
                    n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) ||
                    (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
                if (gone) {
                    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
                    ::close(fd);
                    discarding.erase(linger);
                }
                continue;
            }
            const auto it = connections.find(fd);
            if (it == connections.end()) continue;
            Connection& conn = it->second;
            if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
                close_connection(fd);
                continue;
            }
            if (!conn.writing && (events[i].events & EPOLLIN) != 0) {
                bool peer_closed = false;
                char buffer[4096];
                for (;;) {
                    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
                    if (n > 0) {
                        conn.in.append(buffer, static_cast<std::size_t>(n));
                        // Absolute buffering bound: headers + the
                        // largest admissible body, with framing slack.
                        if (conn.in.size() > config_.max_request_bytes +
                                                 config_.max_body_bytes + 8) {
                            break;
                        }
                        continue;
                    }
                    if (n == 0) peer_closed = true;
                    break;  // EAGAIN, error, or orderly close
                }
                advance_reading(conn);
                // advance_reading may have finished (and erased) the
                // connection or moved it to `discarding`; re-find before
                // touching it again.
                const auto again = connections.find(fd);
                if (again != connections.end() && peer_closed &&
                    !again->second.writing) {
                    // EOF before a complete request.  A peer that sent
                    // nothing gets a silent close (port probes); one
                    // that sent a partial request gets a best-effort 400
                    // — it half-closed, so it can still read the page.
                    Connection& dying = again->second;
                    if (!dying.in.empty() || dying.headers_done) {
                        malformed_.fetch_add(1, std::memory_order_relaxed);
                        metrics.malformed.increment();
                        const std::string page = serialize_response(
                            error_page(400, "incomplete request"), false);
                        [[maybe_unused]] const ssize_t sent = ::send(
                            fd, page.data(), page.size(), MSG_NOSIGNAL);
                        metrics.responses.increment();
                    }
                    close_connection(fd);
                }
                continue;
            }
            if (conn.writing && (events[i].events & EPOLLOUT) != 0) {
                bool done = false;
                while (conn.out_written < conn.out.size()) {
                    const ssize_t n =
                        ::send(fd, conn.out.data() + conn.out_written,
                               conn.out.size() - conn.out_written, MSG_NOSIGNAL);
                    if (n > 0) {
                        conn.out_written += static_cast<std::size_t>(n);
                        continue;
                    }
                    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
                    done = true;  // peer gone
                    break;
                }
                if (conn.out_written >= conn.out.size()) done = true;
                if (done) finish_response(conn);
            }
        }

        // Deadline sweep: slow-loris readers draw a best-effort 408;
        // stuck writers are closed outright.
        const Clock::time_point sweep_now = Clock::now();
        std::vector<int> expired;
        for (const auto& [fd, conn] : connections) {
            if (conn.deadline <= sweep_now) expired.push_back(fd);
        }
        for (const int fd : expired) {
            Connection& conn = connections.at(fd);
            if (!conn.writing) {
                timeouts_.fetch_add(1, std::memory_order_relaxed);
                metrics.timeouts.increment();
                const std::string page =
                    serialize_response(error_page(408, {}), false);
                [[maybe_unused]] const ssize_t sent =
                    ::send(fd, page.data(), page.size(), MSG_NOSIGNAL);
                metrics.responses.increment();
            }
            close_connection(fd);
        }
        for (auto linger = discarding.begin(); linger != discarding.end();) {
            if (linger->second <= sweep_now) {
                ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, linger->first, nullptr);
                ::close(linger->first);
                linger = discarding.erase(linger);
            } else {
                ++linger;
            }
        }
        if (draining && drain_deadline <= sweep_now) {
            while (!connections.empty()) {
                close_connection(connections.begin()->first);
            }
            break;
        }
    }

    // Force-close anything left (loop exits only when drained or past
    // the drain deadline, so this is normally a no-op).  close_connection
    // also hands unreleased ingest-gate charges back.
    while (!connections.empty()) {
        close_connection(connections.begin()->first);
    }
    for (const auto& [fd, deadline] : discarding) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
        ::close(fd);
    }
    discarding.clear();
}

}  // namespace hpr::net
