#include "net/ingest.h"

#include <chrono>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/two_phase.h"

namespace hpr::net {

namespace {

using obs::IntrospectionPage;
using obs::IntrospectionRequest;

/// Strict decimal parse of one field: digits only (timestamps may lead
/// with '-'), full token consumed, no overflow.
bool parse_field_u64(std::string_view token, std::uint64_t max,
                     std::uint64_t& out) {
    if (token.empty() || token.size() > 20) return false;
    std::uint64_t value = 0;
    for (const char c : token) {
        if (c < '0' || c > '9') return false;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
            return false;
        }
        value = value * 10 + digit;
    }
    if (value > max) return false;
    out = value;
    return true;
}

bool parse_field_i64(std::string_view token, std::int64_t& out) {
    bool negative = false;
    if (!token.empty() && token.front() == '-') {
        negative = true;
        token.remove_prefix(1);
    }
    std::uint64_t magnitude = 0;
    const std::uint64_t max =
        negative ? static_cast<std::uint64_t>(
                       std::numeric_limits<std::int64_t>::max()) +
                       1
                 : static_cast<std::uint64_t>(
                       std::numeric_limits<std::int64_t>::max());
    if (!parse_field_u64(token, max, magnitude)) return false;
    out = negative ? -static_cast<std::int64_t>(magnitude - 1) - 1
                   : static_cast<std::int64_t>(magnitude);
    return true;
}

std::string line_error(std::size_t line, std::string_view reason) {
    std::string error = "line ";
    error += std::to_string(line);
    error += ": ";
    error += reason;
    return error;
}

IntrospectionPage error_text(int status, std::string body) {
    IntrospectionPage page;
    page.status = status;
    page.body = std::move(body);
    page.body += '\n';
    return page;
}

void append_kv(std::string& out, std::string_view key, std::string_view value) {
    out += key;
    out += ' ';
    out += value;
    out += '\n';
}

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// IngestGate

struct IngestGate::Metrics {
    obs::Gauge& budget;
    obs::Gauge& pending;
    obs::Counter& admitted;
    obs::Counter& admitted_records;
    obs::Counter& released_records;
    obs::Counter& shed_soft;
    obs::Counter& shed_hard;
    obs::Counter& shed_overflow;

    static Metrics& instance() {
        auto& registry = obs::default_registry();
        static Metrics metrics{
            registry.gauge("hpr_ingest_gate_budget_records",
                           "Pending-records budget of the ingest gate"),
            registry.gauge("hpr_ingest_gate_pending_records",
                           "Estimated records of admitted, not-yet-dispatched "
                           "ingest requests"),
            registry.counter("hpr_ingest_gate_admitted_total",
                             "Ingest requests admitted by the gate"),
            registry.counter("hpr_ingest_gate_admitted_records_total",
                             "Estimated records charged by admitted requests"),
            registry.counter("hpr_ingest_gate_released_records_total",
                             "Charged records returned to the budget"),
            registry.counter("hpr_ingest_gate_shed_soft_total",
                             "Large requests shed in the soft-watermark zone "
                             "(429)"),
            registry.counter("hpr_ingest_gate_shed_hard_total",
                             "Requests shed at or above the hard watermark "
                             "(429)"),
            registry.counter("hpr_ingest_gate_shed_overflow_total",
                             "Requests shed because their estimate alone "
                             "overflows the budget (429)"),
        };
        return metrics;
    }
};

IngestGate::IngestGate(IngestGateConfig config)
    : config_(config), metrics_(&Metrics::instance()) {
    if (config_.pending_budget == 0) config_.pending_budget = 1;
    const auto clamp01 = [](double value) {
        return value < 0.0 ? 0.0 : (value > 1.0 ? 1.0 : value);
    };
    config_.soft_watermark = clamp01(config_.soft_watermark);
    config_.hard_watermark = clamp01(config_.hard_watermark);
    if (config_.hard_watermark < config_.soft_watermark) {
        config_.hard_watermark = config_.soft_watermark;
    }
    if (config_.retry_after_seconds < 1) config_.retry_after_seconds = 1;
    soft_records_ = static_cast<std::size_t>(
        static_cast<double>(config_.pending_budget) * config_.soft_watermark);
    hard_records_ = static_cast<std::size_t>(
        static_cast<double>(config_.pending_budget) * config_.hard_watermark);
    metrics_->budget.set(static_cast<std::int64_t>(config_.pending_budget));
}

bool IngestGate::try_admit(std::size_t records) noexcept {
    std::size_t pending = pending_.load(std::memory_order_relaxed);
    for (;;) {
        if (records > config_.pending_budget - pending) {
            // Overflow first: whatever zone we are in, this request does
            // not fit.
            shed_overflow_.fetch_add(1, std::memory_order_relaxed);
            metrics_->shed_overflow.increment();
            return false;
        }
        if (pending >= hard_records_) {
            shed_hard_.fetch_add(1, std::memory_order_relaxed);
            metrics_->shed_hard.increment();
            return false;
        }
        if (pending >= soft_records_ &&
            records > config_.large_request_records) {
            shed_soft_.fetch_add(1, std::memory_order_relaxed);
            metrics_->shed_soft.increment();
            return false;
        }
        if (pending_.compare_exchange_weak(pending, pending + records,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
            break;
        }
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    admitted_records_.fetch_add(records, std::memory_order_relaxed);
    metrics_->admitted.increment();
    metrics_->admitted_records.increment(records);
    metrics_->pending.set(
        static_cast<std::int64_t>(pending_.load(std::memory_order_relaxed)));
    return true;
}

void IngestGate::release(std::size_t records) noexcept {
    // Clamp against underflow: a release can never exceed what was
    // charged, but the gate protects its own invariant regardless.
    std::size_t pending = pending_.load(std::memory_order_relaxed);
    for (;;) {
        const std::size_t give = records < pending ? records : pending;
        if (pending_.compare_exchange_weak(pending, pending - give,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
            released_records_.fetch_add(give, std::memory_order_relaxed);
            metrics_->released_records.increment(give);
            break;
        }
    }
    metrics_->pending.set(
        static_cast<std::int64_t>(pending_.load(std::memory_order_relaxed)));
}

// ---------------------------------------------------------------------------
// Body parser

bool parse_ingest_body(const std::string& body,
                       std::vector<repsys::Feedback>& out,
                       std::string& error) {
    out.clear();
    if (body.empty()) {
        error = "empty batch";
        return false;
    }
    std::size_t line_number = 0;
    std::size_t position = 0;
    while (position < body.size()) {
        ++line_number;
        std::size_t eol = body.find('\n', position);
        const bool final_unterminated = eol == std::string::npos;
        if (final_unterminated) eol = body.size();
        std::string_view line{body.data() + position, eol - position};
        position = eol + 1;

        if (line.empty()) {
            error = line_error(line_number, "empty line");
            return false;
        }
        if (line.back() == '\r') {
            error = line_error(line_number,
                               "carriage return (lines are LF-terminated)");
            return false;
        }
        const std::size_t sp1 = line.find(' ');
        const std::size_t sp2 =
            sp1 == std::string_view::npos ? std::string_view::npos
                                          : line.find(' ', sp1 + 1);
        if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
            line.find(' ', sp2 + 1) != std::string_view::npos) {
            error = line_error(
                line_number,
                "expected exactly 3 fields: server_id timestamp outcome");
            return false;
        }
        const std::string_view server_field = line.substr(0, sp1);
        const std::string_view time_field = line.substr(sp1 + 1, sp2 - sp1 - 1);
        const std::string_view outcome_field = line.substr(sp2 + 1);

        std::uint64_t server = 0;
        if (!parse_field_u64(server_field,
                             std::numeric_limits<repsys::EntityId>::max(),
                             server)) {
            error = line_error(line_number, "bad server id");
            return false;
        }
        std::int64_t timestamp = 0;
        if (!parse_field_i64(time_field, timestamp)) {
            error = line_error(line_number, "bad timestamp");
            return false;
        }
        repsys::Rating rating{};
        if (outcome_field == "0") {
            rating = repsys::Rating::kNegative;
        } else if (outcome_field == "1") {
            rating = repsys::Rating::kPositive;
        } else if (outcome_field == "2") {
            rating = repsys::Rating::kNeutral;
        } else {
            error = line_error(line_number, "bad outcome (0, 1 or 2)");
            return false;
        }

        repsys::Feedback feedback;
        feedback.time = timestamp;
        feedback.server = static_cast<repsys::EntityId>(server);
        feedback.client = 0;  // the wire protocol carries no issuer id
        feedback.rating = rating;
        out.push_back(feedback);

        if (final_unterminated) break;
    }
    return true;
}

// ---------------------------------------------------------------------------
// IngestService

struct IngestService::Metrics {
    obs::Counter& ingest_requests;
    obs::Counter& ingest_accepted;
    obs::Counter& ingest_accepted_records;
    obs::Counter& ingest_rejected;
    obs::Histogram& ingest_seconds;
    obs::Counter& assess_requests;
    obs::Counter& assess_suspicious;
    obs::Histogram& assess_seconds;

    static Metrics& instance() {
        auto& registry = obs::default_registry();
        static Metrics metrics{
            registry.counter("hpr_ingest_http_requests_total",
                             "POST /ingest requests handled"),
            registry.counter("hpr_ingest_http_accepted_total",
                             "POST /ingest requests accepted (200)"),
            registry.counter("hpr_ingest_http_accepted_records_total",
                             "Feedback records committed through POST /ingest"),
            registry.counter("hpr_ingest_http_rejected_total",
                             "POST /ingest requests rejected (400/413)"),
            registry.histogram("hpr_ingest_http_request_seconds",
                               "POST /ingest handling latency (parse through "
                               "screener-bank update)"),
            registry.counter("hpr_assess_http_requests_total",
                             "GET /assess requests handled"),
            registry.counter("hpr_assess_http_suspicious_total",
                             "GET /assess responses with a suspicious verdict"),
            registry.histogram("hpr_assess_http_request_seconds",
                               "GET /assess handling latency"),
        };
        return metrics;
    }
};

IngestService::IngestService(repsys::FeedbackStore& store,
                             serve::BatchAssessor& assessor,
                             IngestServiceConfig config)
    : config_(config),
      store_(store),
      assessor_(assessor),
      gate_(config.gate),
      metrics_(&Metrics::instance()) {
    if (config_.max_records_per_request == 0) {
        config_.max_records_per_request = 1;
    }
}

HttpResponse IngestService::handle_ingest(const HttpRequest& request) {
    const auto start = std::chrono::steady_clock::now();
    metrics_->ingest_requests.increment();

    const auto reject = [&](int status, std::string detail) {
        rejected_requests_.fetch_add(1, std::memory_order_relaxed);
        metrics_->ingest_rejected.increment();
        HttpResponse response;
        response.status = status;
        response.body = std::move(detail);
        response.body += '\n';
        return response;
    };

    std::vector<repsys::Feedback> feedbacks;
    std::string parse_error;
    if (!parse_ingest_body(request.body, feedbacks, parse_error)) {
        return reject(400, "bad batch: " + parse_error);
    }
    if (feedbacks.size() > config_.max_records_per_request) {
        return reject(413, "batch too large: " +
                               std::to_string(feedbacks.size()) +
                               " records > cap " +
                               std::to_string(config_.max_records_per_request));
    }
    try {
        store_.ingest_batch(feedbacks);
    } catch (const repsys::BatchRejected& rejected) {
        // Batch index -> 1-based body line.
        return reject(400, "bad batch: " +
                               line_error(rejected.index() + 1,
                                          "out-of-order timestamp for its "
                                          "server"));
    }
    // The batch is committed; stream it into the screener bank so the
    // very next /assess answers from it.
    for (const repsys::Feedback& feedback : feedbacks) {
        assessor_.observe(feedback);
    }

    accepted_requests_.fetch_add(1, std::memory_order_relaxed);
    accepted_records_.fetch_add(feedbacks.size(), std::memory_order_relaxed);
    metrics_->ingest_accepted.increment();
    metrics_->ingest_accepted_records.increment(feedbacks.size());
    metrics_->ingest_seconds.observe(seconds_since(start));

    HttpResponse response;
    response.body = "accepted=" + std::to_string(feedbacks.size()) + "\n";
    return response;
}

IntrospectionPage IngestService::assess_page(
    const IntrospectionRequest& request) {
    const auto start = std::chrono::steady_clock::now();
    metrics_->assess_requests.increment();

    const auto server_param = request.param("server");
    if (!server_param) {
        return error_text(400, "missing 'server' parameter");
    }
    std::uint64_t id = 0;
    if (!parse_field_u64(*server_param,
                         std::numeric_limits<repsys::EntityId>::max(), id)) {
        return error_text(400, "bad 'server' parameter: " + *server_param);
    }
    const auto server = static_cast<repsys::EntityId>(id);

    std::vector<serve::ServerAssessment> results;
    try {
        results = assessor_.assess(store_, {server});
    } catch (const std::out_of_range&) {
        return error_text(404, "unknown server: " + std::to_string(server));
    }
    const core::Assessment& assessment = results.front().assessment;
    if (assessment.verdict == core::Verdict::kSuspicious) {
        metrics_->assess_suspicious.increment();
    }

    std::string body;
    append_kv(body, "server", std::to_string(server));
    append_kv(body, "verdict", core::to_string(assessment.verdict));
    append_kv(body, "trust",
              assessment.trust ? std::to_string(*assessment.trust) : "none");
    append_kv(body, "history_length",
              std::to_string(store_.history_length(server).value_or(0)));
    append_kv(body, "stream_state",
              core::to_string(assessor_.stream_state(server)));
    metrics_->assess_seconds.observe(seconds_since(start));

    IntrospectionPage page;
    page.body = std::move(body);
    return page;
}

IntrospectionPage IngestService::stats_page(
    const IntrospectionRequest&) const {
    std::string body;
    append_kv(body, "budget_records",
              std::to_string(gate_.config().pending_budget));
    append_kv(body, "pending_records", std::to_string(gate_.pending()));
    append_kv(body, "soft_watermark_records",
              std::to_string(gate_.soft_records()));
    append_kv(body, "hard_watermark_records",
              std::to_string(gate_.hard_records()));
    append_kv(body, "large_request_records",
              std::to_string(gate_.config().large_request_records));
    append_kv(body, "retry_after_seconds",
              std::to_string(gate_.retry_after_seconds()));
    append_kv(body, "admitted_requests", std::to_string(gate_.admitted()));
    append_kv(body, "admitted_records",
              std::to_string(gate_.admitted_records()));
    append_kv(body, "released_records",
              std::to_string(gate_.released_records()));
    append_kv(body, "shed_soft", std::to_string(gate_.shed_soft()));
    append_kv(body, "shed_hard", std::to_string(gate_.shed_hard()));
    append_kv(body, "shed_overflow", std::to_string(gate_.shed_overflow()));
    append_kv(body, "max_records_per_request",
              std::to_string(config_.max_records_per_request));
    append_kv(body, "accepted_requests", std::to_string(accepted_requests()));
    append_kv(body, "accepted_records", std::to_string(accepted_records()));
    append_kv(body, "rejected_requests", std::to_string(rejected_requests()));
    IntrospectionPage page;
    page.body = std::move(body);
    return page;
}

void register_ingest(obs::IntrospectionTree& tree, IngestService& service) {
    tree.add("/assess", "text/plain; charset=utf-8",
             "Two-phase verdict for one server: /assess?server=<id>",
             [&service](const IntrospectionRequest& request) {
                 return service.assess_page(request);
             });
    tree.add("/ingest/stats", "text/plain; charset=utf-8",
             "Live ingest-gate budget, watermarks and shed counters",
             [&service](const IntrospectionRequest& request) {
                 return service.stats_page(request);
             });
}

}  // namespace hpr::net
