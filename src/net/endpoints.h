#ifndef HPR_NET_ENDPOINTS_H
#define HPR_NET_ENDPOINTS_H

/// \file endpoints.h
/// The standard introspection surface: wiring from the library's live
/// observability sources onto an obs::IntrospectionTree, plus the
/// adapter that serves the tree through the epoll HTTP front-end.
///
/// register_introspection() installs one node per *available* source
/// (absent sources simply register nothing, so a store-less tool still
/// gets /metrics):
///
///   path             backing subsystem
///   /healthz         constant liveness probe
///   /metrics         obs::to_prometheus of the registry (+ fresh uptime)
///   /metrics.json    obs::to_json of the registry
///   /traces          obs::TraceRing::snapshot as JSONL; ?n= and ?server=
///   /servers         FeedbackStore population + screener-bank index
///   /servers/<id>    one server: history length + full StreamInfo
///   /store           FeedbackStore per-shard occupancy table
///   /calibration     stats::Calibrator cache statistics
///   /timeseries      obs::FlightRecorder ring; ?metric= one series, ?n=
///   /health          obs::Watchdog verdict (200 ok / 503 degraded)
///
/// Every page is a point-in-time snapshot taken with the same
/// concurrency contracts the sources already offer (registry visit,
/// ring snapshot, shard-at-a-time occupancy, stripe-locked StreamInfo
/// copies) — a scrape never blocks ingest or assessment for more than
/// one shard/stripe lock at a time.  docs/observability.md documents
/// the endpoint table and a curl runbook.

#include <memory>

#include "net/http_server.h"
#include "obs/flightrecorder.h"
#include "obs/introspection.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "repsys/store.h"
#include "serve/batch_assessor.h"
#include "stats/calibrate.h"

namespace hpr::net {

/// The live state a tree serves.  Raw pointers are non-owning and may
/// be null (that endpoint is skipped); the pointed-to objects must
/// outlive the tree's use.
struct IntrospectionSources {
    obs::Registry* registry = nullptr;  ///< /metrics, /metrics.json
    obs::Tracer* tracer = nullptr;      ///< /traces
    const repsys::FeedbackStore* store = nullptr;        ///< /store, /servers
    const serve::BatchAssessor* assessor = nullptr;      ///< /servers screener columns
    std::shared_ptr<const stats::Calibrator> calibrator;  ///< /calibration
    const obs::FlightRecorder* recorder = nullptr;  ///< /timeseries
    const obs::Watchdog* watchdog = nullptr;        ///< /health
};

/// Install the standard endpoints for the given sources.
/// \throws std::invalid_argument if a path is already registered.
void register_introspection(obs::IntrospectionTree& tree,
                            IntrospectionSources sources);

class IngestService;

/// Adapt a tree to the HTTP front-end.  The returned handler captures a
/// reference: the tree must outlive the server (stop the server first).
/// When `ingest` is non-null, `POST /ingest` routes to it (any other
/// POST draws 404); the service must outlive the server too.  GET-side
/// ingest pages (/assess, /ingest/stats) are tree pages — install them
/// with register_ingest() from net/ingest.h.
[[nodiscard]] HttpHandler make_http_handler(const obs::IntrospectionTree& tree,
                                            IngestService* ingest = nullptr);

}  // namespace hpr::net

#endif  // HPR_NET_ENDPOINTS_H
