#include "net/endpoints.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/online.h"
#include "net/ingest.h"
#include "obs/buildinfo.h"
#include "obs/export.h"

namespace hpr::net {

namespace {

using obs::IntrospectionPage;
using obs::IntrospectionRequest;

IntrospectionPage text_page(std::string body) {
    IntrospectionPage page;
    page.body = std::move(body);
    return page;
}

std::string format_double(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.6g", value);
    return buffer;
}

/// Parse a non-negative integer parameter; false on garbage.
bool parse_u64(const std::string& text, std::uint64_t& out) {
    if (text.empty()) return false;
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0' || text.front() == '-') {
        return false;
    }
    out = static_cast<std::uint64_t>(value);
    return true;
}

void append_kv(std::string& out, std::string_view key, std::string_view value) {
    out += key;
    out += ' ';
    out += value;
    out += '\n';
}

/// One /servers index row: store columns, then screener-bank columns
/// when the server holds a live stream.
void append_server_row(std::string& out, repsys::EntityId server,
                       std::size_t history,
                       const std::optional<serve::BatchAssessor::StreamInfo>& info) {
    out += std::to_string(server);
    out += " history=";
    out += std::to_string(history);
    if (info) {
        out += " screener=";
        out += core::to_string(info->state);
        out += " p_hat=";
        out += format_double(info->p_hat);
        out += " retained_windows=";
        out += std::to_string(info->retained_windows);
    } else {
        out += " screener=none";
    }
    out += '\n';
}

void register_metrics(obs::IntrospectionTree& tree, obs::Registry* registry) {
    tree.add("/metrics", "text/plain; version=0.0.4; charset=utf-8",
             "Prometheus text exposition of the obs registry",
             [registry](const IntrospectionRequest&) {
                 obs::publish_uptime(*registry);
                 IntrospectionPage page;
                 page.content_type = "text/plain; version=0.0.4; charset=utf-8";
                 page.body = obs::to_prometheus(*registry);
                 return page;
             });
    tree.add("/metrics.json", "application/json",
             "JSON snapshot of the obs registry (histogram percentiles included)",
             [registry](const IntrospectionRequest&) {
                 obs::publish_uptime(*registry);
                 IntrospectionPage page;
                 page.content_type = "application/json";
                 page.body = obs::to_json(*registry);
                 return page;
             });
}

void register_traces(obs::IntrospectionTree& tree, obs::Tracer* tracer) {
    tree.add(
        "/traces", "application/x-ndjson",
        "Retained decision records as JSONL; ?n=N newest, ?server=ID filter",
        [tracer](const IntrospectionRequest& request) {
            std::vector<obs::DecisionRecord> records =
                tracer->ring().snapshot();
            if (const auto server = request.param("server")) {
                std::uint64_t id = 0;
                if (!parse_u64(*server, id)) {
                    IntrospectionPage page;
                    page.status = 400;
                    page.body = "bad 'server' parameter: " + *server + "\n";
                    return page;
                }
                std::erase_if(records, [id](const obs::DecisionRecord& record) {
                    return record.server != id;
                });
            }
            if (const auto n = request.param("n")) {
                std::uint64_t keep = 0;
                if (!parse_u64(*n, keep)) {
                    IntrospectionPage page;
                    page.status = 400;
                    page.body = "bad 'n' parameter: " + *n + "\n";
                    return page;
                }
                if (records.size() > keep) {
                    records.erase(records.begin(),
                                  records.end() -
                                      static_cast<std::ptrdiff_t>(keep));
                }
            }
            IntrospectionPage page;
            page.content_type = "application/x-ndjson";
            for (const obs::DecisionRecord& record : records) {
                page.body += obs::to_jsonl(record);
                page.body += '\n';
            }
            return page;
        });
}

void register_store(obs::IntrospectionTree& tree,
                    const repsys::FeedbackStore* store) {
    tree.add("/store", "text/plain; charset=utf-8",
             "FeedbackStore per-shard occupancy",
             [store](const IntrospectionRequest&) {
                 const std::vector<repsys::FeedbackStore::ShardOccupancy>
                     occupancy = store->shard_occupancy();
                 std::string body = "# shards=" +
                                    std::to_string(occupancy.size()) +
                                    " servers=" +
                                    std::to_string(store->server_count()) +
                                    " feedbacks=" +
                                    std::to_string(store->size()) + "\n";
                 for (std::size_t i = 0; i < occupancy.size(); ++i) {
                     body += "shard=" + std::to_string(i) +
                             " servers=" + std::to_string(occupancy[i].servers) +
                             " feedbacks=" +
                             std::to_string(occupancy[i].feedbacks) + "\n";
                 }
                 return text_page(std::move(body));
             });
}

void register_servers(obs::IntrospectionTree& tree,
                      const repsys::FeedbackStore* store,
                      const serve::BatchAssessor* assessor) {
    tree.add_prefix(
        "/servers", "text/plain; charset=utf-8",
        "Known servers (/servers) and one server's live state (/servers/<id>)",
        [store, assessor](const IntrospectionRequest& request) {
            if (request.path == "/servers") {
                const std::vector<repsys::EntityId> servers = store->servers();
                std::uint64_t limit = servers.size();
                if (const auto parameter = request.param("limit")) {
                    if (!parse_u64(*parameter, limit)) {
                        IntrospectionPage page;
                        page.status = 400;
                        page.body =
                            "bad 'limit' parameter: " + *parameter + "\n";
                        return page;
                    }
                }
                std::string body =
                    "# servers=" + std::to_string(servers.size()) +
                    " feedbacks=" + std::to_string(store->size()) +
                    " streams=" +
                    std::to_string(assessor == nullptr
                                       ? 0
                                       : assessor->tracked_streams()) +
                    "\n";
                std::uint64_t shown = 0;
                for (const repsys::EntityId server : servers) {
                    if (shown++ >= limit) break;
                    append_server_row(
                        body, server,
                        store->history_length(server).value_or(0),
                        assessor == nullptr ? std::nullopt
                                            : assessor->stream_info(server));
                }
                return text_page(std::move(body));
            }

            // "/servers/<id>"
            std::uint64_t id = 0;
            if (request.path.size() < 10 ||
                !parse_u64(request.path.substr(9), id)) {
                IntrospectionPage page;
                page.status = 404;
                page.body = "not a server id: " + request.path + "\n";
                return page;
            }
            const std::optional<std::size_t> history =
                store->history_length(id);
            const std::optional<serve::BatchAssessor::StreamInfo> info =
                assessor == nullptr ? std::nullopt : assessor->stream_info(id);
            if (!history && !info) {
                IntrospectionPage page;
                page.status = 404;
                page.body = "unknown server: " + std::to_string(id) + "\n";
                return page;
            }
            std::string body;
            append_kv(body, "server", std::to_string(id));
            append_kv(body, "history_length",
                      std::to_string(history.value_or(0)));
            append_kv(body, "store_shard",
                      std::to_string(store->shard_of(id)));
            if (info) {
                append_kv(body, "screener_state", core::to_string(info->state));
                append_kv(body, "transactions",
                          std::to_string(info->transactions));
                append_kv(body, "windows", std::to_string(info->windows));
                append_kv(body, "retained_windows",
                          std::to_string(info->retained_windows));
                append_kv(body, "horizon", std::to_string(info->horizon));
                append_kv(body, "evaluations",
                          std::to_string(info->evaluations));
                append_kv(body, "failing_streak",
                          std::to_string(info->failing_streak));
                append_kv(body, "passing_streak",
                          std::to_string(info->passing_streak));
                append_kv(body, "p_hat", format_double(info->p_hat));
                append_kv(body, "memory_bytes",
                          std::to_string(info->memory_bytes));
            } else {
                append_kv(body, "screener_state", "none");
            }
            return text_page(std::move(body));
        });
}

void register_calibration(obs::IntrospectionTree& tree,
                          std::shared_ptr<const stats::Calibrator> calibrator) {
    tree.add("/calibration", "text/plain; charset=utf-8",
             "Calibrator cache statistics (hits/misses/joins/in-flight)",
             [calibrator = std::move(calibrator)](const IntrospectionRequest&) {
                 const stats::CalibratorStats stats = calibrator->stats();
                 std::string body;
                 append_kv(body, "hits", std::to_string(stats.hits));
                 append_kv(body, "misses", std::to_string(stats.misses));
                 append_kv(body, "single_flight_joins",
                           std::to_string(stats.single_flight_joins));
                 append_kv(body, "in_flight", std::to_string(stats.in_flight));
                 append_kv(body, "cache_entries",
                           std::to_string(stats.cache_entries));
                 return text_page(std::move(body));
             });
}

/// Exact round-trip formatting for series timestamps and quantiles (the
/// %.6g above is for human-facing pages; /timeseries is machine-facing).
std::string format_double_exact(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.12g", value);
    return buffer;
}

void append_series_point(std::string& out, const obs::SeriesPoint& point) {
    out += "{\"seq\":";
    out += std::to_string(point.sequence);
    out += ",\"wall_time\":";
    out += format_double_exact(point.wall_time);
    out += ",\"interval\":";
    out += format_double_exact(point.interval_seconds);
    switch (point.point.kind) {
        case obs::MetricKind::kCounter:
            out += ",\"value\":";
            out += std::to_string(point.point.value);
            out += ",\"delta\":";
            out += std::to_string(point.point.delta);
            break;
        case obs::MetricKind::kGauge:
            out += ",\"level\":";
            out += std::to_string(point.point.level);
            break;
        case obs::MetricKind::kHistogram:
            out += ",\"count\":";
            out += std::to_string(point.point.count);
            out += ",\"interval_count\":";
            out += std::to_string(point.point.interval_count);
            out += ",\"interval_sum\":";
            out += format_double_exact(point.point.interval_sum);
            out += ",\"p50\":";
            out += format_double_exact(point.point.p50);
            out += ",\"p95\":";
            out += format_double_exact(point.point.p95);
            out += ",\"p99\":";
            out += format_double_exact(point.point.p99);
            break;
    }
    out += '}';
}

void register_timeseries(obs::IntrospectionTree& tree,
                         const obs::FlightRecorder* recorder) {
    tree.add(
        "/timeseries", "application/json",
        "Flight-recorder ring: metric index, or ?metric=NAME series (?n=N newest)",
        [recorder](const IntrospectionRequest& request) {
            IntrospectionPage page;
            page.content_type = "application/json";
            std::uint64_t keep = UINT64_MAX;
            if (const auto n = request.param("n")) {
                if (!parse_u64(*n, keep)) {
                    page.status = 400;
                    page.content_type = "text/plain; charset=utf-8";
                    page.body = "bad 'n' parameter: " + *n + "\n";
                    return page;
                }
            }
            const auto metric = request.param("metric");
            if (!metric) {
                // Index page: ring shape plus every metric in the newest
                // snapshot, so a client can discover what it may query.
                page.body = "{\"interval_seconds\":";
                page.body +=
                    format_double_exact(recorder->interval_seconds());
                page.body += ",\"capacity\":";
                page.body += std::to_string(recorder->capacity());
                page.body += ",\"size\":";
                page.body += std::to_string(recorder->size());
                page.body += ",\"samples_taken\":";
                page.body += std::to_string(recorder->samples_taken());
                page.body += ",\"metrics\":[";
                bool first = true;
                for (const auto& [name, kind] : recorder->metric_names()) {
                    if (!first) page.body += ',';
                    first = false;
                    page.body += "{\"name\":\"";
                    page.body += obs::escape_json(name);
                    page.body += "\",\"kind\":\"";
                    page.body += obs::to_string(kind);
                    page.body += "\"}";
                }
                page.body += "]}";
                return page;
            }
            const std::vector<obs::SeriesPoint> series =
                recorder->series(*metric, keep);
            if (series.empty()) {
                page.status = 404;
                page.content_type = "text/plain; charset=utf-8";
                page.body = "no recorded series for metric: " + *metric + "\n";
                return page;
            }
            page.body = "{\"metric\":\"";
            page.body += obs::escape_json(*metric);
            page.body += "\",\"kind\":\"";
            page.body += obs::to_string(series.front().point.kind);
            page.body += "\",\"points\":[";
            for (std::size_t i = 0; i < series.size(); ++i) {
                if (i > 0) page.body += ',';
                append_series_point(page.body, series[i]);
            }
            page.body += "]}";
            return page;
        });
}

void register_health(obs::IntrospectionTree& tree,
                     const obs::Watchdog* watchdog) {
    tree.add(
        "/health", "text/plain; charset=utf-8",
        "Watchdog verdict: 200 ok / 503 degraded, one reasoned line per signal",
        [watchdog](const IntrospectionRequest&) {
            const obs::HealthVerdict verdict = watchdog->last_verdict();
            IntrospectionPage page;
            // 503 lets a load balancer act on the verdict without
            // parsing the body.
            page.status = verdict.healthy ? 200 : 503;
            std::string body;
            append_kv(body, "verdict", verdict.healthy ? "ok" : "degraded");
            append_kv(body, "sequence", std::to_string(verdict.sequence));
            append_kv(body, "uptime_seconds",
                      format_double(verdict.uptime_seconds));
            for (const obs::HealthSignal& signal : verdict.signals) {
                body += "signal ";
                body += signal.name;
                body += signal.firing      ? " state=firing"
                        : signal.evaluated ? " state=ok"
                                           : " state=pending";
                body += " detail=\"";
                body += signal.detail;
                body += "\"\n";
            }
            page.body = std::move(body);
            return page;
        });
}

}  // namespace

void register_introspection(obs::IntrospectionTree& tree,
                            IntrospectionSources sources) {
    tree.add("/healthz", "text/plain; charset=utf-8", "liveness probe",
             [](const IntrospectionRequest&) { return text_page("ok\n"); });
    if (sources.registry != nullptr) {
        register_metrics(tree, sources.registry);
    }
    if (sources.tracer != nullptr) {
        register_traces(tree, sources.tracer);
    }
    if (sources.store != nullptr) {
        register_store(tree, sources.store);
        register_servers(tree, sources.store, sources.assessor);
    }
    if (sources.calibrator != nullptr) {
        register_calibration(tree, std::move(sources.calibrator));
    }
    if (sources.recorder != nullptr) {
        register_timeseries(tree, sources.recorder);
    }
    if (sources.watchdog != nullptr) {
        register_health(tree, sources.watchdog);
    }
}

HttpHandler make_http_handler(const obs::IntrospectionTree& tree,
                              IngestService* ingest) {
    return [&tree, ingest](const HttpRequest& request) {
        if (request.method == "POST") {
            if (ingest != nullptr && request.path == "/ingest") {
                return ingest->handle_ingest(request);
            }
            HttpResponse response;
            response.status = 404;
            response.body = "no POST endpoint: " + request.path + "\n";
            return response;
        }
        const IntrospectionPage page = tree.get(request.target);
        HttpResponse response;
        response.status = page.status;
        response.content_type = page.content_type;
        response.body = page.body;
        return response;
    };
}

}  // namespace hpr::net
