#include "net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace hpr::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Seconds until `deadline`; <= 0 once it has passed.
double seconds_left(Clock::time_point deadline) {
    return std::chrono::duration<double>(deadline - Clock::now()).count();
}

/// (Re-)apply `seconds` as the socket's send+receive timeout.
void set_socket_timeouts(int fd, double seconds) {
    if (seconds < 1e-3) seconds = 1e-3;  // 0 would mean "block forever"
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool equals_ignore_case(std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto lower = [](char c) {
            return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
        };
        if (lower(a[i]) != lower(b[i])) return false;
    }
    return true;
}

/// Connect a blocking socket with send/receive timeouts applied.
int connect_to(const std::string& host, std::uint16_t port,
               double timeout_seconds) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    set_socket_timeouts(fd, timeout_seconds);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                  sizeof address) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/// Send everything before `deadline`.  The remaining time is re-applied
/// as the socket timeout before every send, so a peer draining one
/// window per SO_SNDTIMEO cannot extend the call past the deadline.
bool send_all(int fd, std::string_view bytes, Clock::time_point deadline) {
    std::size_t written = 0;
    while (written < bytes.size()) {
        const double remaining = seconds_left(deadline);
        if (remaining <= 0) return false;
        set_socket_timeouts(fd, remaining);
        const ssize_t n = ::send(fd, bytes.data() + written,
                                 bytes.size() - written, MSG_NOSIGNAL);
        if (n <= 0) return false;
        written += static_cast<std::size_t>(n);
    }
    return true;
}

/// Read until orderly close; false on error, a response exceeding
/// `max_bytes`, or `deadline` passing.  SO_RCVTIMEO alone bounds each
/// recv(2), not the read as a whole: a server trickling one byte per
/// timeout window would otherwise keep a "bounded" fetch alive forever.
bool read_to_eof(int fd, std::string& out, std::size_t max_bytes,
                 Clock::time_point deadline) {
    char buffer[8192];
    for (;;) {
        const double remaining = seconds_left(deadline);
        if (remaining <= 0) return false;
        set_socket_timeouts(fd, remaining);
        const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
        if (n > 0) {
            if (out.size() + static_cast<std::size_t>(n) > max_bytes) {
                return false;
            }
            out.append(buffer, static_cast<std::size_t>(n));
            continue;
        }
        return n == 0;
    }
}

}  // namespace

std::optional<std::string> FetchResult::header(std::string_view name) const {
    for (const auto& [key, value] : headers) {
        if (equals_ignore_case(key, name)) return value;
    }
    return std::nullopt;
}

std::optional<std::string> http_exchange(const std::string& host,
                                         std::uint16_t port,
                                         std::string_view raw_request,
                                         double timeout_seconds,
                                         bool shutdown_write,
                                         std::size_t max_response_bytes) {
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(timeout_seconds));
    const int fd = connect_to(host, port, timeout_seconds);
    if (fd < 0) return std::nullopt;
    if (!raw_request.empty() && !send_all(fd, raw_request, deadline)) {
        ::close(fd);
        return std::nullopt;
    }
    if (shutdown_write) ::shutdown(fd, SHUT_WR);
    std::string response;
    const bool ok = read_to_eof(fd, response, max_response_bytes, deadline);
    ::close(fd);
    if (!ok) return std::nullopt;
    return response;
}

namespace {

/// Parse one raw response into a FetchResult (shared by GET and POST).
std::optional<FetchResult> parse_response(const std::string& raw,
                                          std::size_t max_body_bytes) {
    const std::size_t head_end = raw.find("\r\n\r\n");
    if (head_end == std::string::npos) return std::nullopt;
    const std::string_view head{raw.data(), head_end};
    const std::size_t line_end = head.find("\r\n");
    const std::string_view status_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);
    // "HTTP/1.1 NNN Reason"
    const std::size_t sp = status_line.find(' ');
    if (sp == std::string_view::npos || status_line.size() < sp + 4) {
        return std::nullopt;
    }
    FetchResult result;
    result.status = std::atoi(std::string{status_line.substr(sp + 1, 3)}.c_str());
    if (result.status < 100 || result.status > 599) return std::nullopt;

    std::string_view rest = line_end == std::string_view::npos
                                ? std::string_view{}
                                : head.substr(line_end + 2);
    while (!rest.empty()) {
        const std::size_t eol = rest.find("\r\n");
        const std::string_view line =
            eol == std::string_view::npos ? rest : rest.substr(0, eol);
        rest = eol == std::string_view::npos ? std::string_view{}
                                             : rest.substr(eol + 2);
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) continue;
        std::string_view value = line.substr(colon + 1);
        while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
        result.headers.emplace_back(std::string{line.substr(0, colon)},
                                    std::string{value});
    }
    result.body = raw.substr(head_end + 4);
    if (result.body.size() > max_body_bytes) return std::nullopt;
    // A body shorter than the advertised Content-Length means the
    // connection died mid-body; returning it as a complete fetch would
    // hand a forensics consumer silently truncated evidence.
    if (const auto content_length = result.header("Content-Length")) {
        errno = 0;
        char* end = nullptr;
        const unsigned long long declared =
            std::strtoull(content_length->c_str(), &end, 10);
        if (errno != 0 || end == content_length->c_str() || *end != '\0') {
            return std::nullopt;
        }
        if (result.body.size() < declared) return std::nullopt;
    }
    return result;
}

}  // namespace

std::optional<FetchResult> http_get(const std::string& host, std::uint16_t port,
                                    const std::string& target,
                                    double timeout_seconds,
                                    std::size_t max_body_bytes) {
    std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
    // Headroom over the body bound for the status line + headers; an
    // oversized raw read already fails inside http_exchange.
    const std::optional<std::string> raw =
        http_exchange(host, port, request, timeout_seconds, false,
                      max_body_bytes + 65536);
    if (!raw) return std::nullopt;
    return parse_response(*raw, max_body_bytes);
}

std::optional<FetchResult> http_post(const std::string& host,
                                     std::uint16_t port,
                                     const std::string& target,
                                     std::string_view body,
                                     double timeout_seconds,
                                     std::size_t max_body_bytes) {
    std::string request = "POST " + target + " HTTP/1.1\r\nHost: " + host +
                          "\r\nContent-Type: text/plain" +
                          "\r\nContent-Length: " + std::to_string(body.size()) +
                          "\r\nConnection: close\r\n\r\n";
    request += body;
    const std::optional<std::string> raw =
        http_exchange(host, port, request, timeout_seconds, false,
                      max_body_bytes + 65536);
    if (!raw) return std::nullopt;
    return parse_response(*raw, max_body_bytes);
}

}  // namespace hpr::net
