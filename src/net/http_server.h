#ifndef HPR_NET_HTTP_SERVER_H
#define HPR_NET_HTTP_SERVER_H

/// \file http_server.h
/// A minimal dependency-free epoll HTTP/1.1 front-end.
///
/// The introspection daemon (ROADMAP item 1) needs exactly one network
/// capability: answer small GET requests against live process state
/// while the process serves heavy ingest+assess load — and never let a
/// slow, hostile, or excessive scraper interfere with that load.  This
/// server is sized to that job, not to general web serving:
///
///  * **one event-loop thread**, non-blocking accept/read/write over
///    level-triggered epoll; handlers (the IntrospectionTree) run on
///    that thread, so the hot assessment path never sees an HTTP stall;
///  * **bounded admission**: at most `max_connections` concurrent
///    connections; a connection beyond the bound is answered `503
///    Service Unavailable` and closed immediately (backpressure the
///    scraper can see, instead of an unbounded accept queue);
///  * **request timeout**: a connection that has not completed its
///    request headers within `request_timeout_seconds` (slow-loris) is
///    answered `408 Request Timeout` (best effort) and closed;
///  * **bounded parsing**: request line + headers above
///    `max_request_bytes` draw `431`, malformed request lines `400`,
///    methods other than GET/HEAD/POST `405` — each followed by a close;
///  * **bounded bodies** (the ingest write path): a POST must declare a
///    Content-Length (`411` otherwise, `501` for Transfer-Encoding);
///    a declared length above `max_body_bytes` draws `413` *before* the
///    body is buffered, a body that stalls mid-stream falls under the
///    same `request_timeout_seconds` deadline (`408`), and a peer that
///    half-closes before completing its request is answered a
///    best-effort `400` instead of a silent close;
///  * **ingest admission** (optional): when `config.ingest_gate` is
///    set, every POST is charged against the gate's pending-records
///    budget at header-parse time — *before* its body is buffered — and
///    a shed request draws `429 Too Many Requests` with a `Retry-After`
///    header while its body bytes are drained and discarded.  The
///    charge is released when the request is dispatched or its
///    connection dies, whichever comes first, so a client disconnecting
///    mid-body can never leak budget;
///  * **graceful drain**: request_stop() is async-signal-safe (one
///    eventfd write), so SIGINT/SIGTERM handlers can call it directly;
///    the loop then stops accepting, finishes in-flight responses for
///    up to `drain_timeout_seconds`, and exits.
///
/// Every response carries `Connection: close` — scrape traffic is one
/// request per connection, which keeps connection state machines to a
/// single in/out buffer pair and makes the admission bound meaningful.
///
/// The front-end instruments itself through the same obs registry it
/// typically serves: hpr_http_requests_total, hpr_http_responses_total
/// (by class), hpr_http_rejected_total, hpr_http_timeouts_total,
/// hpr_http_malformed_total, hpr_http_bytes_sent_total,
/// hpr_http_active_connections and the hpr_http_request_seconds
/// latency histogram (request parsed -> response flushed).

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace hpr::net {

class IngestGate;

/// One parsed request.
struct HttpRequest {
    std::string method;   ///< "GET", "HEAD" or "POST"
    std::string target;   ///< as sent: path plus optional "?query"
    std::string path;     ///< target before '?'
    std::string query;    ///< target after '?', possibly empty
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;     ///< exactly Content-Length bytes; empty for GET/HEAD

    /// First header with the given name, case-insensitively.
    [[nodiscard]] std::optional<std::string> header(std::string_view name) const;
};

/// One response; the server adds the status line, Content-Type,
/// Content-Length and Connection headers.
struct HttpResponse {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;

    /// Additional response headers (e.g. Retry-After on a 429), written
    /// verbatim after the standard ones.
    std::vector<std::pair<std::string, std::string>> extra_headers;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Standard reason phrase for the status codes this server emits
/// ("OK", "Not Found", ...); "Unknown" otherwise.
[[nodiscard]] const char* status_reason(int status) noexcept;

struct HttpServerConfig {
    std::string bind_address = "127.0.0.1";

    /// TCP port; 0 binds an ephemeral port (read it back via port()).
    std::uint16_t port = 0;

    /// Concurrent-connection bound; connection max_connections+1 is
    /// answered 503 and closed (admission control).
    std::size_t max_connections = 64;

    /// Request line + headers byte bound; beyond it the request draws
    /// 431 and the connection closes.
    std::size_t max_request_bytes = 8192;

    /// Request body byte bound: a POST declaring more draws 413 before
    /// any body byte is buffered (its body is drained and discarded so
    /// the error page survives the peer's send queue).
    std::size_t max_body_bytes = std::size_t{1} << 20;

    /// Optional ingest admission control: when set, every POST is
    /// charged against this gate at header-parse time (see the file
    /// comment).  Non-owning; the gate must outlive the server.
    IngestGate* ingest_gate = nullptr;

    /// Deadline for a connection to deliver its complete request
    /// headers; a slow-loris that misses it draws a best-effort 408 and
    /// a close.  Also bounds how long an unflushed response may linger.
    double request_timeout_seconds = 5.0;

    /// How long stop() keeps serving in-flight connections before
    /// force-closing them.
    double drain_timeout_seconds = 2.0;

    /// listen(2) backlog.
    int backlog = 64;
};

/// The epoll front-end.  start() spawns the event-loop thread; the
/// handler runs on that thread and must be thread-safe against the rest
/// of the process (IntrospectionTree and every obs/serve/repsys source
/// already is).  Thread-safe: start/stop/request_stop/port may be
/// called from any thread; request_stop is async-signal-safe.
class HttpServer {
public:
    /// \throws std::invalid_argument if handler is null.
    HttpServer(HttpServerConfig config, HttpHandler handler);

    /// Stops and joins (best effort) if still running.
    ~HttpServer();

    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /// Bind, listen and spawn the event loop.
    /// \throws std::runtime_error on socket/bind/listen failure.
    void start();

    /// The bound TCP port (resolves config 0 to the ephemeral port).
    /// Valid after start().
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    [[nodiscard]] bool running() const noexcept {
        return running_.load(std::memory_order_acquire);
    }

    /// Ask the event loop to drain and exit.  Async-signal-safe (a
    /// single eventfd write), so SIGINT/SIGTERM handlers may call it.
    void request_stop() noexcept;

    /// request_stop() and join the loop thread.  Idempotent.
    void stop();

    /// Event-loop responsiveness self-test: queue a ping through the
    /// loop's eventfd (the same wake mechanism request_stop uses).  The
    /// loop acknowledges it at its next wakeup; ping_lag_seconds() then
    /// reports how long that took — a direct measurement of how
    /// promptly the loop is turning over under its current load.
    /// \returns false when the server is not running or the previous
    /// ping is still unacknowledged (one measurement in flight at a
    /// time keeps the timestamps unambiguous).
    bool ping() noexcept;

    /// Lag of the most recently acknowledged ping, in seconds; negative
    /// when no ping has been acknowledged yet.
    [[nodiscard]] double ping_lag_seconds() const noexcept;

    /// Lifetime pings acknowledged by the loop.
    [[nodiscard]] std::uint64_t pings_acked() const noexcept {
        return pings_acked_.load(std::memory_order_relaxed);
    }

    /// Lifetime totals of THIS server instance (the obs registry
    /// aggregates across instances): completed responses, 503
    /// admission rejections, 408 request timeouts, 400/431/405 parse
    /// rejections, bytes written.
    [[nodiscard]] std::uint64_t requests_served() const noexcept {
        return requests_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t rejected_connections() const noexcept {
        return rejected_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t timed_out_connections() const noexcept {
        return timeouts_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t malformed_requests() const noexcept {
        return malformed_.load(std::memory_order_relaxed);
    }
    /// 413 responses: POSTs declaring a body beyond max_body_bytes.
    [[nodiscard]] std::uint64_t oversized_requests() const noexcept {
        return oversized_.load(std::memory_order_relaxed);
    }
    /// 429 responses issued on behalf of the ingest gate.
    [[nodiscard]] std::uint64_t shed_requests() const noexcept {
        return shed_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
        return bytes_sent_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] const HttpServerConfig& config() const noexcept {
        return config_;
    }

private:
    struct Connection;

    void run_loop();
    void close_listener();

    HttpServerConfig config_;
    HttpHandler handler_;
    int listen_fd_ = -1;
    int epoll_fd_ = -1;
    int wake_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread loop_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stop_requested_{false};

    std::atomic<std::uint64_t> ping_sent_ns_{0};  ///< 0 = no ping in flight
    std::atomic<std::int64_t> ping_lag_ns_{-1};   ///< -1 = none acked yet
    std::atomic<std::uint64_t> pings_acked_{0};

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> timeouts_{0};
    std::atomic<std::uint64_t> malformed_{0};
    std::atomic<std::uint64_t> oversized_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> bytes_sent_{0};
};

}  // namespace hpr::net

#endif  // HPR_NET_HTTP_SERVER_H
