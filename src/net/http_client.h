#ifndef HPR_NET_HTTP_CLIENT_H
#define HPR_NET_HTTP_CLIENT_H

/// \file http_client.h
/// A minimal blocking HTTP/1.1 GET client — just enough to scrape the
/// introspection daemon from tests, benches and examples without
/// shelling out to curl.  One request per connection (the server closes
/// after each response), bounded by SO_RCVTIMEO/SO_SNDTIMEO socket
/// timeouts so a wedged server cannot hang a test binary.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpr::net {

/// One fetched response.
struct FetchResult {
    int status = 0;  ///< parsed from the status line
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /// First header with the given name, case-insensitively.
    [[nodiscard]] std::optional<std::string> header(std::string_view name) const;
};

/// GET `target` from host:port, reading until the server closes.
/// \returns std::nullopt on connect/send/timeout/parse failure.
[[nodiscard]] std::optional<FetchResult> http_get(const std::string& host,
                                                  std::uint16_t port,
                                                  const std::string& target,
                                                  double timeout_seconds = 5.0);

/// Send raw bytes and return the raw response bytes (read to EOF).
/// The escape hatch for protocol-abuse tests: malformed request lines,
/// oversized headers, half-written slow-loris requests.
/// \param shutdown_write  half-close after sending, signalling EOF to
///        the server while still reading its response.
/// \returns std::nullopt on connect/send/timeout failure (an empty
///          response string is a successful exchange the server chose
///          not to answer).
[[nodiscard]] std::optional<std::string> http_exchange(
    const std::string& host, std::uint16_t port, std::string_view raw_request,
    double timeout_seconds = 5.0, bool shutdown_write = false);

}  // namespace hpr::net

#endif  // HPR_NET_HTTP_CLIENT_H
