#ifndef HPR_NET_HTTP_CLIENT_H
#define HPR_NET_HTTP_CLIENT_H

/// \file http_client.h
/// A minimal blocking HTTP/1.1 GET/POST client — just enough to talk to
/// the serving daemon from tests, benches and examples without shelling
/// out to curl.  One request per connection (the server closes after
/// each response).
///
/// Every call is bounded by an overall wall-clock deadline of
/// `timeout_seconds`, not just per-syscall socket timeouts: SO_RCVTIMEO
/// alone bounds each recv(2), so a server that accepts and then
/// trickles (or never sends) one byte per timeout window could extend a
/// "bounded" fetch forever — exactly how `trace_query --url` used to
/// hang.  The remaining time is re-applied as the socket timeout before
/// every send/recv, and the call fails once the deadline passes.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpr::net {

/// One fetched response.
struct FetchResult {
    int status = 0;  ///< parsed from the status line
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /// First header with the given name, case-insensitively.
    [[nodiscard]] std::optional<std::string> header(std::string_view name) const;
};

/// GET `target` from host:port, reading until the server closes.
/// \param max_body_bytes  reject (nullopt) a response whose body
///        exceeds this — a scraping tool must not balloon on a server
///        that streams forever.
/// \returns std::nullopt on connect/send/timeout/parse failure, on a
///          body larger than `max_body_bytes`, and on a body SHORTER
///          than the response's Content-Length (a connection that died
///          mid-body must not masquerade as a complete fetch).  A
///          header-only reply without Content-Length — or with
///          Content-Length: 0 — is a successful empty-body fetch.
[[nodiscard]] std::optional<FetchResult> http_get(
    const std::string& host, std::uint16_t port, const std::string& target,
    double timeout_seconds = 5.0,
    std::size_t max_body_bytes = std::size_t{16} << 20);

/// POST `body` to `target` (Content-Type: text/plain) and parse the
/// response like http_get.  The ingest client: batched feedback bodies
/// go up, "accepted=<n>" / error pages come back.  Same deadline and
/// size bounds as http_get.
[[nodiscard]] std::optional<FetchResult> http_post(
    const std::string& host, std::uint16_t port, const std::string& target,
    std::string_view body, double timeout_seconds = 5.0,
    std::size_t max_body_bytes = std::size_t{16} << 20);

/// Send raw bytes and return the raw response bytes (read to EOF).
/// The escape hatch for protocol-abuse tests: malformed request lines,
/// oversized headers, half-written slow-loris requests.
/// \param shutdown_write  half-close after sending, signalling EOF to
///        the server while still reading its response.
/// \param max_response_bytes  stop reading and fail (nullopt) beyond
///        this many raw response bytes.
/// \returns std::nullopt on connect/send/timeout/oversize failure (an
///          empty response string is a successful exchange the server
///          chose not to answer).
[[nodiscard]] std::optional<std::string> http_exchange(
    const std::string& host, std::uint16_t port, std::string_view raw_request,
    double timeout_seconds = 5.0, bool shutdown_write = false,
    std::size_t max_response_bytes = std::size_t{64} << 20);

}  // namespace hpr::net

#endif  // HPR_NET_HTTP_CLIENT_H
