#include "core/category.h"

#include <stdexcept>

namespace hpr::core {

std::vector<std::string> CategoryTestResult::failed_categories() const {
    std::vector<std::string> failed;
    for (const auto& [label, result] : per_category) {
        if (!result.passed) failed.push_back(label);
    }
    return failed;
}

std::map<std::string, std::vector<repsys::Feedback>> partition_by_category(
    std::span<const repsys::Feedback> feedbacks, const Categorizer& categorizer) {
    if (!categorizer) {
        throw std::invalid_argument("partition_by_category: categorizer must be set");
    }
    std::map<std::string, std::vector<repsys::Feedback>> partitions;
    for (const repsys::Feedback& f : feedbacks) {
        partitions[categorizer(f)].push_back(f);
    }
    return partitions;
}

CategoryTest::CategoryTest(MultiTestConfig config, Categorizer categorizer,
                           std::shared_ptr<stats::Calibrator> calibrator)
    : multi_(config, std::move(calibrator)), categorizer_(std::move(categorizer)) {
    if (!categorizer_) {
        throw std::invalid_argument("CategoryTest: categorizer must be set");
    }
}

CategoryTestResult CategoryTest::test(
    std::span<const repsys::Feedback> feedbacks) const {
    CategoryTestResult result;
    for (const auto& [label, partition] : partition_by_category(feedbacks, categorizer_)) {
        result.per_category.emplace(
            label, multi_.test(std::span<const repsys::Feedback>{partition}));
    }
    return result;
}

MultiTestResult CategoryTest::test_category(
    std::span<const repsys::Feedback> feedbacks, const std::string& label) const {
    std::vector<repsys::Feedback> partition;
    for (const repsys::Feedback& f : feedbacks) {
        if (categorizer_(f) == label) partition.push_back(f);
    }
    return multi_.test(std::span<const repsys::Feedback>{partition});
}

}  // namespace hpr::core
