#include "core/multinomial_test.h"

namespace hpr::core {

MultinomialBehaviorTest::MultinomialBehaviorTest(
    BehaviorTestConfig config, std::shared_ptr<stats::Calibrator> calibrator)
    : single_(config, std::move(calibrator)) {}

MultinomialTestResult MultinomialBehaviorTest::test(
    std::span<const repsys::Feedback> feedbacks) const {
    const std::uint32_t m = single_.config().window_size;
    const std::size_t n = feedbacks.size();
    const std::size_t k = n / m;

    MultinomialTestResult result;
    result.per_category.resize(kCategories);
    result.p_hat.assign(kCategories, 0.0);
    if (k < single_.config().min_windows) {
        result.sufficient = false;
        result.passed = true;
        return result;
    }
    result.sufficient = true;

    // Per-category window counts, windows anchored at the newest end.
    const std::size_t offset = n - k * m;
    std::vector<stats::EmpiricalDistribution> counts(
        kCategories, stats::EmpiricalDistribution{m});
    for (std::size_t w = 0; w < k; ++w) {
        const std::size_t begin = offset + w * m;
        std::array<std::uint32_t, kCategories> window_counts{};
        for (std::size_t i = begin; i < begin + m; ++i) {
            const auto category = static_cast<std::size_t>(feedbacks[i].rating);
            if (category < kCategories) ++window_counts[category];
        }
        for (std::size_t j = 0; j < kCategories; ++j) counts[j].add(window_counts[j]);
    }

    for (std::size_t j = 0; j < kCategories; ++j) {
        result.per_category[j] = single_.test(counts[j]);
        result.p_hat[j] = result.per_category[j].p_hat;
        if (!result.per_category[j].passed) result.passed = false;
    }
    return result;
}

}  // namespace hpr::core
