#ifndef HPR_CORE_MULTINOMIAL_TEST_H
#define HPR_CORE_MULTINOMIAL_TEST_H

/// \file multinomial_test.h
/// Behavior testing for multi-valued feedback (paper §3.1: "we only need
/// to replace binomial distributions in our framework with multinomial
/// distributions for multi-value feedbacks").
///
/// An honest player's per-window rating counts follow a multinomial
/// Mult(m, p_1..p_c).  The test checks, per rating category j, that the
/// empirical distribution of the per-window count of category j matches
/// its marginal Binomial(m, p̂_j), reusing the binary machinery (including
/// threshold calibration).  The history passes iff every category passes.

#include <array>
#include <span>
#include <vector>

#include "core/behavior_test.h"
#include "repsys/types.h"

namespace hpr::core {

/// Result of multinomial behavior testing.
struct MultinomialTestResult {
    bool passed = true;
    bool sufficient = false;

    /// One binary-style result per rating category, indexed by the
    /// numeric value of repsys::Rating.
    std::vector<BehaviorTestResult> per_category;

    /// Estimated category probabilities p̂_j.
    std::vector<double> p_hat;
};

/// Multinomial behavior tester for ratings taking values in
/// {negative, positive, neutral}.
class MultinomialBehaviorTest {
public:
    static constexpr std::size_t kCategories = 3;

    explicit MultinomialBehaviorTest(BehaviorTestConfig config = {},
                                     std::shared_ptr<stats::Calibrator> calibrator = nullptr);

    [[nodiscard]] MultinomialTestResult test(
        std::span<const repsys::Feedback> feedbacks) const;

    [[nodiscard]] const BehaviorTestConfig& config() const noexcept {
        return single_.config();
    }

private:
    BehaviorTest single_;
};

}  // namespace hpr::core

#endif  // HPR_CORE_MULTINOMIAL_TEST_H
