#include "core/behavior_test.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/scratch.h"
#include "stats/reference_cache.h"

namespace hpr::core {

namespace {

/// Largest integer count that converts to double exactly; the cache's
/// bit-identity guarantee (reference_cache.h) needs exact conversions, so
/// absurdly long histories fall back to fresh model construction.
constexpr std::uint64_t kExactDoubleLimit = 1ULL << 53;

/// Reduce a raw sequence to its newest-anchored window-count histogram in
/// the calling thread's scratch slot — compute_window_stats semantics
/// (window w covers [n-(w+1)m, n-wm), the oldest n mod m outcomes are
/// dropped) without the per-call WindowStats allocations.
template <typename Sequence, typename IsGood>
const stats::EmpiricalDistribution& fill_window_counts(const Sequence& seq,
                                                       std::uint32_t m,
                                                       IsGood is_good) {
    stats::EmpiricalDistribution& counts = assessment_scratch().window_counts;
    counts.reset(m);
    const std::size_t n = seq.size();
    const std::size_t windows = n / m;
    for (std::size_t w = 0; w < windows; ++w) {
        const std::size_t begin = n - (w + 1) * m;
        std::uint32_t good = 0;
        for (std::size_t i = begin; i < begin + m; ++i) {
            if (is_good(seq[i])) ++good;
        }
        counts.add(good);
    }
    return counts;
}

}  // namespace

std::shared_ptr<stats::Calibrator> make_calibrator(const BehaviorTestConfig& config) {
    stats::CalibrationConfig cc;
    cc.confidence = config.confidence;
    cc.replications = config.replications;
    cc.kind = config.distance;
    cc.threads = config.calibration_threads;
    return std::make_shared<stats::Calibrator>(cc);
}

std::size_t warm_calibration(stats::Calibrator& calibrator, std::uint32_t window_size,
                             std::size_t max_windows, double p_lo, double p_hi) {
    if (window_size == 0) {
        throw std::invalid_argument("warm_calibration: window size must be > 0");
    }
    if (!(p_lo >= 0.0 && p_hi <= 1.0 && p_lo <= p_hi)) {
        throw std::invalid_argument(
            "warm_calibration: need 0 <= p_lo <= p_hi <= 1");
    }
    const auto& config = calibrator.config();
    const std::size_t top =
        std::min(std::max<std::size_t>(max_windows, 1), config.windows_cap);

    // Every distinct point of the calibrator's geometric window grid up to
    // `top`: walk k upward, let the calibrator bucket it, and skip over
    // the rest of each bucket.
    std::vector<std::size_t> windows;
    for (std::size_t k = 1; k <= top;) {
        windows.push_back(calibrator.effective_windows(k));
        std::size_t next = k + 1;
        while (next <= top && calibrator.effective_windows(next) == windows.back()) {
            ++next;
        }
        k = next;
    }

    // Every p̂ bucket intersecting [p_lo, p_hi] (plus the interior-clamped
    // neighbours of degenerate endpoints, which make_key maps onto).
    const auto grid = static_cast<double>(config.p_grid);
    const auto lo_bucket = static_cast<std::uint32_t>(std::ceil(p_lo * grid));
    const auto hi_bucket = static_cast<std::uint32_t>(std::floor(p_hi * grid));
    std::vector<double> p_hats;
    for (std::uint32_t b = lo_bucket; b <= hi_bucket; ++b) {
        p_hats.push_back(static_cast<double>(b) / grid);
    }
    if (p_hats.empty()) p_hats.push_back((p_lo + p_hi) / 2.0);

    return calibrator.precalibrate(windows, {window_size}, p_hats);
}

BehaviorTest::BehaviorTest(BehaviorTestConfig config,
                           std::shared_ptr<stats::Calibrator> calibrator)
    : config_(config), calibrator_(std::move(calibrator)) {
    if (config_.window_size == 0) {
        throw std::invalid_argument("BehaviorTest: window size must be > 0");
    }
    if (config_.min_windows == 0) {
        throw std::invalid_argument("BehaviorTest: min_windows must be > 0");
    }
    if (!calibrator_) calibrator_ = make_calibrator(config_);
    if (config_.use_reference_cache) {
        reference_cache_ = config_.reference_cache
                               ? config_.reference_cache.get()
                               : &stats::ReferenceModelCache::process_wide();
    }
}

BehaviorTestResult BehaviorTest::test(std::span<const repsys::Feedback> feedbacks) const {
    return test(fill_window_counts(feedbacks, config_.window_size,
                                   [](const repsys::Feedback& f) { return f.good(); }));
}

BehaviorTestResult BehaviorTest::test(std::span<const std::uint8_t> outcomes) const {
    return test(fill_window_counts(outcomes, config_.window_size,
                                   [](std::uint8_t o) { return o != 0; }));
}

BehaviorTestResult BehaviorTest::test(const WindowStats& stats) const {
    if (stats.window_size != config_.window_size) {
        throw std::invalid_argument("BehaviorTest: window size mismatch");
    }
    return test(stats.distribution());
}

BehaviorTestResult BehaviorTest::test(const stats::EmpiricalDistribution& counts,
                                      double confidence_override) const {
    if (counts.max_value() != config_.window_size) {
        throw std::invalid_argument("BehaviorTest: distribution support mismatch");
    }
    BehaviorTestResult result;
    result.windows = counts.size();
    result.transactions_used = counts.size() * config_.window_size;
    if (counts.size() < config_.min_windows) {
        // Not enough evidence to reject the honest-player hypothesis.
        result.sufficient = false;
        result.passed = true;
        return result;
    }
    result.sufficient = true;
    const std::uint64_t good = counts.value_sum();
    const auto total = static_cast<std::uint64_t>(result.transactions_used);
    result.p_hat = total == 0 ? 0.0
                              : static_cast<double>(good) / static_cast<double>(total);
    if (reference_cache_ != nullptr && total < kExactDoubleLimit) {
        // Shared model, bit-identical to the fresh construction below: the
        // cache keys on the exact rational good/total (reference_cache.h).
        const auto reference =
            reference_cache_->reference(config_.window_size, good, total);
        result.distance = stats::distance(counts, *reference, config_.distance);
    } else {
        const stats::Binomial reference{config_.window_size, result.p_hat};
        result.distance = stats::distance(counts, reference, config_.distance);
    }
    const double confidence =
        confidence_override > 0.0 ? confidence_override : config_.confidence;
    result.threshold = calibrator_->threshold(counts.size(), config_.window_size,
                                              result.p_hat, confidence);
    result.passed = result.distance <= result.threshold;
    return result;
}

}  // namespace hpr::core
