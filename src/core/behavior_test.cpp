#include "core/behavior_test.h"

#include <stdexcept>

namespace hpr::core {

std::shared_ptr<stats::Calibrator> make_calibrator(const BehaviorTestConfig& config) {
    stats::CalibrationConfig cc;
    cc.confidence = config.confidence;
    cc.replications = config.replications;
    cc.kind = config.distance;
    return std::make_shared<stats::Calibrator>(cc);
}

BehaviorTest::BehaviorTest(BehaviorTestConfig config,
                           std::shared_ptr<stats::Calibrator> calibrator)
    : config_(config), calibrator_(std::move(calibrator)) {
    if (config_.window_size == 0) {
        throw std::invalid_argument("BehaviorTest: window size must be > 0");
    }
    if (config_.min_windows == 0) {
        throw std::invalid_argument("BehaviorTest: min_windows must be > 0");
    }
    if (!calibrator_) calibrator_ = make_calibrator(config_);
}

BehaviorTestResult BehaviorTest::test(std::span<const repsys::Feedback> feedbacks) const {
    return test(compute_window_stats(feedbacks, config_.window_size));
}

BehaviorTestResult BehaviorTest::test(std::span<const std::uint8_t> outcomes) const {
    return test(compute_window_stats(outcomes, config_.window_size));
}

BehaviorTestResult BehaviorTest::test(const WindowStats& stats) const {
    if (stats.window_size != config_.window_size) {
        throw std::invalid_argument("BehaviorTest: window size mismatch");
    }
    return test(stats.distribution());
}

BehaviorTestResult BehaviorTest::test(const stats::EmpiricalDistribution& counts,
                                      double confidence_override) const {
    if (counts.max_value() != config_.window_size) {
        throw std::invalid_argument("BehaviorTest: distribution support mismatch");
    }
    BehaviorTestResult result;
    result.windows = counts.size();
    result.transactions_used = counts.size() * config_.window_size;
    if (counts.size() < config_.min_windows) {
        // Not enough evidence to reject the honest-player hypothesis.
        result.sufficient = false;
        result.passed = true;
        return result;
    }
    result.sufficient = true;
    result.p_hat = result.transactions_used == 0
                       ? 0.0
                       : static_cast<double>(counts.value_sum()) /
                             static_cast<double>(result.transactions_used);
    const stats::Binomial reference{config_.window_size, result.p_hat};
    result.distance = stats::distance(counts, reference.pmf_table(), config_.distance);
    const double confidence =
        confidence_override > 0.0 ? confidence_override : config_.confidence;
    result.threshold = calibrator_->threshold(counts.size(), config_.window_size,
                                              result.p_hat, confidence);
    result.passed = result.distance <= result.threshold;
    return result;
}

}  // namespace hpr::core
