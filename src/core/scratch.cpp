#include "core/scratch.h"

namespace hpr::core {

AssessmentScratch& assessment_scratch() noexcept {
    thread_local AssessmentScratch scratch;
    return scratch;
}

}  // namespace hpr::core
