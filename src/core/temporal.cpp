#include "core/temporal.h"

#include <stdexcept>

namespace hpr::core {
namespace {

/// Non-negative remainder (timestamps may precede the epoch).
constexpr std::int64_t positive_mod(std::int64_t value, std::int64_t modulus) noexcept {
    const std::int64_t r = value % modulus;
    return r < 0 ? r + modulus : r;
}

}  // namespace

int hour_of_day(repsys::Timestamp time) noexcept {
    return static_cast<int>(positive_mod(time, kSecondsPerDay) / kSecondsPerHour);
}

int day_of_week(repsys::Timestamp time) noexcept {
    return static_cast<int>(positive_mod(time, kSecondsPerWeek) / kSecondsPerDay);
}

Categorizer weekday_weekend_categorizer() {
    return [](const repsys::Feedback& f) -> std::string {
        return day_of_week(f.time) < 5 ? "weekday" : "weekend";
    };
}

Categorizer business_hours_categorizer(int open_hour, int close_hour) {
    if (!(open_hour >= 0 && open_hour < close_hour && close_hour <= 24)) {
        throw std::invalid_argument(
            "business_hours_categorizer: need 0 <= open < close <= 24");
    }
    return [open_hour, close_hour](const repsys::Feedback& f) -> std::string {
        const bool weekday = day_of_week(f.time) < 5;
        const int hour = hour_of_day(f.time);
        return weekday && hour >= open_hour && hour < close_hour ? "business"
                                                                 : "off-hours";
    };
}

Categorizer time_slice_categorizer(std::int64_t slice_seconds) {
    if (slice_seconds <= 0) {
        throw std::invalid_argument("time_slice_categorizer: slice must be positive");
    }
    return [slice_seconds](const repsys::Feedback& f) -> std::string {
        const std::int64_t slice =
            f.time >= 0 ? f.time / slice_seconds
                        : (f.time - slice_seconds + 1) / slice_seconds;
        return "epoch-" + std::to_string(slice);
    };
}

}  // namespace hpr::core
