#ifndef HPR_CORE_ONLINE_H
#define HPR_CORE_ONLINE_H

/// \file online.h
/// Streaming honest-player screening.
///
/// The batch MultiTest re-walks a server's feedback log on every call —
/// fine for assess-before-transaction, wasteful for a reputation server
/// monitoring thousands of live feedback streams.  OnlineScreener is the
/// streaming form: feed outcomes one at a time; window statistics update
/// in O(1), and the suffix ladder of §3.3 is re-evaluated only when a
/// window completes (every m feedbacks).
///
/// **Retention horizon.**  With `max_windows = H > 0` the screener keeps
/// only the newest H complete windows' good-counts in a fixed-capacity
/// ring (allocated once, never regrown), and the suffix ladder's deepest
/// stage spans exactly the retained horizon.  Per-feedback cost is then
/// O(H/m) amortized and per-stream memory is O(H) — both independent of
/// stream age, which is what lets a serving process hold millions of
/// live screeners (docs/scaling.md, "Streaming-first assessment").
/// While the stream still fits the horizon, verdicts are identical to
/// the unbounded screener's; once it wraps, the ladder tests the
/// retained suffix only — equivalent to batch multi-testing the newest
/// H*m transactions (the property suite pins both equivalences).
/// `max_windows = 0` keeps the full window history: the ladder then
/// deepens with the stream and an evaluation costs O(windows) — the
/// pre-horizon behavior, still useful for offline forensics.
///
/// It also adds hysteresis.  A single marginal evaluation should not
/// ostracize a server (the sequential-testing problem: over a long stream
/// even an honest player will eventually graze the threshold), so
/// transitions **into and out of kSuspicious** require `patience`
/// consecutive failing / `recovery` consecutive passing evaluations.
/// From kInsufficient the asymmetry is deliberate: the first *passing*
/// evaluation establishes kClear immediately (clearing merely confirms
/// the honest prior and carries no ostracism risk), while flagging a
/// never-judged stream still requires `patience` consecutive failures.
/// tests/core/online_test.cpp pins this contract.
///
/// One deliberate difference from the batch tester: windows are anchored
/// at the *start* of the stream (feedbacks 1..m form the first window),
/// because a stream has no fixed newest end.  Window statistics are
/// order-independent within a window, so the tests are statistically
/// identical; verdicts can differ only through window phase.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/behavior_test.h"
#include "core/config.h"
#include "repsys/types.h"
#include "stats/calibrate.h"
#include "stats/empirical.h"

namespace hpr::core {

/// Streaming screener state.
enum class StreamState : std::uint8_t {
    kInsufficient,  ///< not enough complete windows to evaluate yet
    kClear,         ///< consistent with the honest-player model
    kSuspicious,    ///< flagged after `patience` consecutive failures
};

[[nodiscard]] const char* to_string(StreamState state) noexcept;

/// Configuration of the streaming screener.
struct OnlineScreenerConfig {
    MultiTestConfig test{};
    std::size_t patience = 2;  ///< consecutive failing evaluations to flag
    std::size_t recovery = 2;  ///< consecutive passing evaluations to clear

    /// Retention horizon in complete windows.  Positive: only the newest
    /// `max_windows` window good-counts are retained (fixed ring, bounded
    /// memory, O(max_windows/m) amortized per feedback).  0: unbounded —
    /// the whole window history is kept and evaluations deepen with the
    /// stream.  Positive values below `test.base.min_windows` are
    /// rejected (such a horizon could never be evaluated).
    std::size_t max_windows = 0;
};

/// Incremental multi-testing over a live outcome stream.
class OnlineScreener {
public:
    explicit OnlineScreener(OnlineScreenerConfig config = {},
                            std::shared_ptr<stats::Calibrator> calibrator = nullptr);

    /// Feed the next transaction outcome.  O(1) unless a window completes,
    /// in which case the suffix ladder is re-evaluated: O(max_windows)
    /// with a retention horizon, O(windows) unbounded.
    void observe(bool good);

    /// Feed a feedback (its rating's goodness is observed).
    void observe(const repsys::Feedback& feedback) { observe(feedback.good()); }

    [[nodiscard]] StreamState state() const noexcept { return state_; }

    /// Total outcomes observed.
    [[nodiscard]] std::size_t transactions() const noexcept { return transactions_; }

    /// Complete windows observed over the stream's lifetime (retained or
    /// not).
    [[nodiscard]] std::size_t windows() const noexcept { return windows_completed_; }

    /// Complete windows currently retained (== windows() while the
    /// stream fits the horizon; capped at max_windows once it wraps).
    [[nodiscard]] std::size_t retained_windows() const noexcept { return retained_; }

    /// Configured retention horizon (0 = unbounded).
    [[nodiscard]] std::size_t horizon() const noexcept { return config_.max_windows; }

    /// Evaluations performed (one per completed window once testable).
    [[nodiscard]] std::size_t evaluations() const noexcept { return evaluations_; }

    /// Did the most recent evaluation pass?  (true before any evaluation.)
    [[nodiscard]] bool last_evaluation_passed() const noexcept {
        return last_evaluation_passed_;
    }

    /// Current failing / passing streak lengths.
    [[nodiscard]] std::size_t failing_streak() const noexcept { return failing_streak_; }
    [[nodiscard]] std::size_t passing_streak() const noexcept { return passing_streak_; }

    /// p̂ over the retained complete windows, from running totals (O(1)).
    [[nodiscard]] double p_hat() const noexcept;

    /// Resident bytes of this screener (object + ring storage).  The ring
    /// is reserved at construction when a horizon is set, so this is
    /// constant for the screener's whole life — the per-stream memory
    /// bound bench/streaming_steady_state asserts.
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return sizeof(*this) +
               window_good_counts_.capacity() * sizeof(std::uint32_t);
    }

    /// The entity this screener monitors, for decision traces (obs/trace.h).
    /// Optional: screeners are keyed externally, so the default is 0.
    void set_entity(repsys::EntityId entity) noexcept { entity_ = entity; }
    [[nodiscard]] repsys::EntityId entity() const noexcept { return entity_; }

    [[nodiscard]] const OnlineScreenerConfig& config() const noexcept { return config_; }

private:
    void evaluate();

    /// Retained good-count `back` windows from the newest (0 = newest).
    [[nodiscard]] std::uint32_t good_count_from_newest(std::size_t back) const noexcept {
        if (config_.max_windows == 0) return window_good_counts_[retained_ - 1 - back];
        return window_good_counts_[(ring_head_ + retained_ - 1 - back) %
                                   window_good_counts_.size()];
    }

    OnlineScreenerConfig config_;
    repsys::EntityId entity_ = 0;
    BehaviorTest single_;
    std::size_t step_windows_;  ///< suffix step in windows

    /// Retained window good-counts.  Unbounded: append-only, oldest
    /// first.  Bounded: a ring of capacity max_windows whose oldest
    /// element sits at ring_head_ once full.
    std::vector<std::uint32_t> window_good_counts_;
    std::size_t ring_head_ = 0;         ///< oldest retained slot (bounded mode)
    std::size_t retained_ = 0;          ///< windows currently retained
    std::size_t windows_completed_ = 0; ///< lifetime complete windows
    std::uint64_t retained_good_ = 0;   ///< running good total over retained windows
    std::uint32_t current_window_good_ = 0;
    std::uint32_t current_window_fill_ = 0;
    std::size_t transactions_ = 0;

    StreamState state_ = StreamState::kInsufficient;
    bool last_evaluation_passed_ = true;
    std::size_t evaluations_ = 0;
    std::size_t failing_streak_ = 0;
    std::size_t passing_streak_ = 0;
};

}  // namespace hpr::core

#endif  // HPR_CORE_ONLINE_H
