#ifndef HPR_CORE_ONLINE_H
#define HPR_CORE_ONLINE_H

/// \file online.h
/// Streaming honest-player screening.
///
/// The batch MultiTest re-walks a server's feedback log on every call —
/// fine for assess-before-transaction, wasteful for a reputation server
/// monitoring thousands of live feedback streams.  OnlineScreener is the
/// streaming form: feed outcomes one at a time; window statistics update
/// in O(1), and the suffix ladder of §3.3 is re-evaluated only when a
/// window completes (every m feedbacks), at O(k) in the number of
/// complete windows.
///
/// It also adds hysteresis.  A single marginal evaluation should not
/// ostracize a server (the sequential-testing problem: over a long stream
/// even an honest player will eventually graze the threshold), so state
/// transitions require `patience` consecutive failing evaluations to flag
/// and `recovery` consecutive passing ones to clear.
///
/// One deliberate difference from the batch tester: windows are anchored
/// at the *start* of the stream (feedbacks 1..m form the first window),
/// because a stream has no fixed newest end.  Window statistics are
/// order-independent within a window, so the tests are statistically
/// identical; verdicts can differ only through window phase.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/behavior_test.h"
#include "core/config.h"
#include "repsys/types.h"
#include "stats/calibrate.h"
#include "stats/empirical.h"

namespace hpr::core {

/// Streaming screener state.
enum class StreamState : std::uint8_t {
    kInsufficient,  ///< not enough complete windows to evaluate yet
    kClear,         ///< consistent with the honest-player model
    kSuspicious,    ///< flagged after `patience` consecutive failures
};

[[nodiscard]] const char* to_string(StreamState state) noexcept;

/// Configuration of the streaming screener.
struct OnlineScreenerConfig {
    MultiTestConfig test{};
    std::size_t patience = 2;  ///< consecutive failing evaluations to flag
    std::size_t recovery = 2;  ///< consecutive passing evaluations to clear
};

/// Incremental multi-testing over a live outcome stream.
class OnlineScreener {
public:
    explicit OnlineScreener(OnlineScreenerConfig config = {},
                            std::shared_ptr<stats::Calibrator> calibrator = nullptr);

    /// Feed the next transaction outcome.  O(1) unless a window completes,
    /// in which case the suffix ladder is re-evaluated (O(windows)).
    void observe(bool good);

    /// Feed a feedback (its rating's goodness is observed).
    void observe(const repsys::Feedback& feedback) { observe(feedback.good()); }

    [[nodiscard]] StreamState state() const noexcept { return state_; }

    /// Total outcomes observed.
    [[nodiscard]] std::size_t transactions() const noexcept { return transactions_; }

    /// Complete windows so far.
    [[nodiscard]] std::size_t windows() const noexcept {
        return window_good_counts_.size();
    }

    /// Evaluations performed (one per completed window once testable).
    [[nodiscard]] std::size_t evaluations() const noexcept { return evaluations_; }

    /// Did the most recent evaluation pass?  (true before any evaluation.)
    [[nodiscard]] bool last_evaluation_passed() const noexcept {
        return last_evaluation_passed_;
    }

    /// Current failing / passing streak lengths.
    [[nodiscard]] std::size_t failing_streak() const noexcept { return failing_streak_; }
    [[nodiscard]] std::size_t passing_streak() const noexcept { return passing_streak_; }

    /// p̂ over all complete windows.
    [[nodiscard]] double p_hat() const noexcept;

    /// The entity this screener monitors, for decision traces (obs/trace.h).
    /// Optional: screeners are keyed externally, so the default is 0.
    void set_entity(repsys::EntityId entity) noexcept { entity_ = entity; }
    [[nodiscard]] repsys::EntityId entity() const noexcept { return entity_; }

    [[nodiscard]] const OnlineScreenerConfig& config() const noexcept { return config_; }

private:
    void evaluate();

    OnlineScreenerConfig config_;
    repsys::EntityId entity_ = 0;
    BehaviorTest single_;
    std::size_t step_windows_;  ///< suffix step in windows

    std::vector<std::uint32_t> window_good_counts_;  ///< oldest first
    std::uint32_t current_window_good_ = 0;
    std::uint32_t current_window_fill_ = 0;
    std::size_t transactions_ = 0;

    StreamState state_ = StreamState::kInsufficient;
    bool last_evaluation_passed_ = true;
    std::size_t evaluations_ = 0;
    std::size_t failing_streak_ = 0;
    std::size_t passing_streak_ = 0;
};

}  // namespace hpr::core

#endif  // HPR_CORE_ONLINE_H
