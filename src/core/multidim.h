#ifndef HPR_CORE_MULTIDIM_H
#define HPR_CORE_MULTIDIM_H

/// \file multidim.h
/// Behavior testing for multi-dimensional feedback.
///
/// Paper §2 notes that "a feedback may be multi-dimensional, reflecting
/// the client's evaluation on a variety of aspects of a service, e.g.,
/// price, product quality and time of delivery", and §3.1 prescribes the
/// extension: "build a statistical model for each dimension".  This
/// module implements exactly that — a feedback carries one rating per
/// named dimension, and each dimension's outcome stream is screened with
/// its own multi-test.  A server must be behaviorally consistent on every
/// dimension; an attacker gaming only the headline dimension (great
/// delivery scores, manipulated quality scores) fails the quality screen.

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/multi_test.h"
#include "repsys/types.h"
#include "stats/calibrate.h"

namespace hpr::core {

/// A feedback with one rating per dimension.
struct DimensionalFeedback {
    repsys::Timestamp time = 0;
    repsys::EntityId server = 0;
    repsys::EntityId client = 0;
    std::vector<repsys::Rating> ratings;  ///< aligned with the test's dimensions

    friend bool operator==(const DimensionalFeedback&,
                           const DimensionalFeedback&) = default;
};

/// Per-dimension screening outcome.
struct MultiDimensionalResult {
    bool passed = true;
    bool sufficient = false;
    std::map<std::string, MultiTestResult> per_dimension;

    [[nodiscard]] std::vector<std::string> failed_dimensions() const;
};

/// Multi-testing applied independently per feedback dimension.
class MultiDimensionalTest {
public:
    /// \param dimensions  dimension names, in rating-vector order
    /// \throws std::invalid_argument if dimensions is empty or contains
    /// duplicates.
    MultiDimensionalTest(std::vector<std::string> dimensions,
                         MultiTestConfig config = {},
                         std::shared_ptr<stats::Calibrator> calibrator = nullptr);

    /// Screen a dimensional-feedback sequence (oldest first).
    /// \throws std::invalid_argument if any feedback's rating count does
    /// not match the dimension count.
    [[nodiscard]] MultiDimensionalResult test(
        std::span<const DimensionalFeedback> feedbacks) const;

    /// Screen a single dimension of interest by name.
    /// \throws std::invalid_argument for unknown dimension names.
    [[nodiscard]] MultiTestResult test_dimension(
        std::span<const DimensionalFeedback> feedbacks,
        const std::string& dimension) const;

    [[nodiscard]] const std::vector<std::string>& dimensions() const noexcept {
        return dimensions_;
    }

private:
    [[nodiscard]] std::vector<std::uint8_t> outcomes_of(
        std::span<const DimensionalFeedback> feedbacks, std::size_t index) const;

    std::vector<std::string> dimensions_;
    MultiTest multi_;
};

}  // namespace hpr::core

#endif  // HPR_CORE_MULTIDIM_H
