#include "core/online.h"

#include <limits>
#include <stdexcept>

#include "core/scratch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hpr::core {

namespace {

/// Streaming-screening metrics, shared by every screener in the process.
struct ScreenerMetrics {
    obs::Counter& evaluations;
    obs::Counter& flagged;
    obs::Counter& recovered;
};

ScreenerMetrics& screener_metrics() {
    auto& registry = obs::default_registry();
    static ScreenerMetrics metrics{
        registry.counter("hpr_screener_evaluations_total",
                         "Suffix-ladder evaluations across all online screeners"),
        registry.counter("hpr_screener_flagged_total",
                         "Streams flagged suspicious (after patience failures)"),
        registry.counter("hpr_screener_recovered_total",
                         "Flagged streams cleared (after recovery passes)"),
    };
    return metrics;
}

}  // namespace

const char* to_string(StreamState state) noexcept {
    switch (state) {
        case StreamState::kInsufficient: return "insufficient";
        case StreamState::kClear: return "clear";
        case StreamState::kSuspicious: return "suspicious";
    }
    return "unknown";
}

OnlineScreener::OnlineScreener(OnlineScreenerConfig config,
                               std::shared_ptr<stats::Calibrator> calibrator)
    : config_(config),
      single_(config.test.base,
              calibrator ? std::move(calibrator) : make_calibrator(config.test.base)),
      step_windows_(config.test.effective_step() / config.test.base.window_size) {
    if (config_.patience == 0 || config_.recovery == 0) {
        throw std::invalid_argument(
            "OnlineScreener: patience and recovery must be positive");
    }
    if (config_.max_windows != 0 &&
        config_.max_windows < config_.test.base.min_windows) {
        throw std::invalid_argument(
            "OnlineScreener: max_windows must be 0 (unbounded) or >= min_windows");
    }
    // The ring never regrows: a bounded screener's memory footprint is
    // fixed at construction (memory_bytes() relies on this).
    if (config_.max_windows != 0) window_good_counts_.reserve(config_.max_windows);
}

double OnlineScreener::p_hat() const noexcept {
    if (retained_ == 0) return 0.0;
    return static_cast<double>(retained_good_) /
           static_cast<double>(retained_ * config_.test.base.window_size);
}

void OnlineScreener::observe(bool good) {
    ++transactions_;
    if (good) ++current_window_good_;
    if (++current_window_fill_ < config_.test.base.window_size) return;

    const std::uint32_t completed = current_window_good_;
    current_window_good_ = 0;
    current_window_fill_ = 0;
    ++windows_completed_;
    if (config_.max_windows != 0 && retained_ == config_.max_windows) {
        // Horizon full: the oldest window falls off the ring.
        retained_good_ -= window_good_counts_[ring_head_];
        window_good_counts_[ring_head_] = completed;
        ring_head_ = (ring_head_ + 1) % config_.max_windows;
    } else {
        window_good_counts_.push_back(completed);
        ++retained_;
    }
    retained_good_ += completed;
    if (retained_ >= config_.test.base.min_windows) evaluate();
}

void OnlineScreener::evaluate() {
    obs::TraceContext trace{obs::default_tracer(), entity_, "online_screener"};
    const std::uint32_t m = config_.test.base.window_size;
    if (obs::DecisionRecord* record = trace.record()) {
        record->mode = "multi";
        record->window_size = m;
        record->history_length = transactions_;
        record->p_hat = p_hat();
    }

    // The §3.3 suffix ladder over the retained windows: suffixes of
    // k, k - step, k - 2*step, ... windows, newest-suffix first.  With a
    // retention horizon k is capped at max_windows, so this loop — the
    // whole per-window cost — is bounded regardless of stream age.
    const std::size_t total = retained_;
    const std::size_t min_windows = config_.test.base.min_windows;
    const std::size_t stages = (total - min_windows) / step_windows_ + 1;
    const double confidence =
        config_.test.bonferroni
            ? 1.0 - (1.0 - config_.test.base.confidence) / static_cast<double>(stages)
            : 0.0;

    bool all_passed = true;
    double min_margin = std::numeric_limits<double>::infinity();
    bool any_sufficient = false;
    // Outermost ladder on this thread — it owns the thread-local ladder
    // slot (core/scratch.h), reset per evaluation instead of reallocated.
    stats::EmpiricalDistribution& counts = assessment_scratch().ladder_counts;
    counts.reset(m);
    std::size_t added = 0;
    {
        obs::TraceSpan ladder{"phase1/ladder"};
        for (std::size_t stage = 0; stage < stages; ++stage) {
            const std::size_t want = total - (stages - 1 - stage) * step_windows_;
            while (added < want) {
                counts.add(good_count_from_newest(added));
                ++added;
            }
            const BehaviorTestResult result = single_.test(counts, confidence);
            if (obs::DecisionRecord* record = trace.record()) {
                obs::StageEvidence evidence;
                evidence.suffix_length = want * m;
                evidence.windows = result.windows;
                evidence.p_hat = result.p_hat;
                evidence.distance = result.distance;
                evidence.epsilon = result.threshold;
                evidence.sufficient = result.sufficient;
                evidence.passed = result.passed;
                record->stages.push_back(evidence);
                if (!result.passed && !record->failed) record->failed = evidence;
            }
            if (result.sufficient) {
                any_sufficient = true;
                if (result.margin() < min_margin) min_margin = result.margin();
            }
            if (!result.passed) {
                all_passed = false;
                if (config_.test.stop_on_failure) break;
            }
        }
    }

    ++evaluations_;
    screener_metrics().evaluations.increment();
    last_evaluation_passed_ = all_passed;
    if (all_passed) {
        ++passing_streak_;
        failing_streak_ = 0;
    } else {
        ++failing_streak_;
        passing_streak_ = 0;
    }

    const StreamState before = state_;
    switch (state_) {
        case StreamState::kInsufficient:
            // Deliberately asymmetric (see the file comment): one passing
            // evaluation confirms the honest prior, while flagging a
            // never-judged stream still takes `patience` failures.
            if (all_passed) {
                state_ = StreamState::kClear;
            } else if (failing_streak_ >= config_.patience) {
                state_ = StreamState::kSuspicious;
            }
            // else: failing but under patience — stay insufficient.
            break;
        case StreamState::kClear:
            if (failing_streak_ >= config_.patience) state_ = StreamState::kSuspicious;
            break;
        case StreamState::kSuspicious:
            if (passing_streak_ >= config_.recovery) state_ = StreamState::kClear;
            break;
    }
    if (state_ != before) {
        if (state_ == StreamState::kSuspicious) {
            screener_metrics().flagged.increment();
        } else if (before == StreamState::kSuspicious) {
            screener_metrics().recovered.increment();
        }
    }
    if (obs::DecisionRecord* record = trace.record()) {
        record->verdict = to_string(state_);
        if (any_sufficient) record->min_margin = min_margin;
        if (state_ != before) {
            record->transition =
                state_ == StreamState::kSuspicious ? "flagged" : "recovered";
        }
    }
}

}  // namespace hpr::core
