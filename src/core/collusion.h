#ifndef HPR_CORE_COLLUSION_H
#define HPR_CORE_COLLUSION_H

/// \file collusion.h
/// Collusion-resilient behavior testing (paper §4).
///
/// Colluders can feed a server fake positive feedback, so the raw
/// time-ordered history of a colluding attacker can look perfectly
/// honest.  The paper's countermeasure exploits two observations about
/// honest servers: (1) their supporter base keeps growing, and (2) the
/// feedback distribution of frequent clients matches that of occasional
/// clients.  The test therefore re-orders the feedback sequence — clients
/// with more feedbacks first, each client's feedbacks in time order — and
/// runs the standard distribution test on the re-ordered sequence.  A
/// colluder's large all-positive block then shows up as a distributional
/// shift between the head and the tail of the sequence.

#include <span>
#include <vector>

#include "core/behavior_test.h"
#include "core/multi_test.h"
#include "repsys/types.h"

namespace hpr::core {

/// Re-order a feedback sequence by issuer (paper §4): group feedbacks by
/// client, sort groups by descending feedback count (ties: the client
/// whose first feedback is older comes first), keep each group internally
/// in time order, and concatenate.
[[nodiscard]] std::vector<repsys::Feedback> reorder_by_issuer(
    std::span<const repsys::Feedback> feedbacks);

/// Collusion-resilient behavior tester: the §3 tests applied to the
/// issuer-reordered sequence.
class CollusionResilientTest {
public:
    explicit CollusionResilientTest(MultiTestConfig config = {},
                                    std::shared_ptr<stats::Calibrator> calibrator = nullptr);

    /// Single behavior test on the re-ordered sequence (§4, first form).
    [[nodiscard]] BehaviorTestResult test_single(
        std::span<const repsys::Feedback> feedbacks) const;

    /// Multi-testing on the re-ordered sequence (§4, "Similarly, ... we
    /// can also perform multi-testing of server behavior").
    [[nodiscard]] MultiTestResult test_multi(
        std::span<const repsys::Feedback> feedbacks) const;

    [[nodiscard]] const MultiTestConfig& config() const noexcept {
        return multi_.config();
    }

private:
    MultiTest multi_;
};

}  // namespace hpr::core

#endif  // HPR_CORE_COLLUSION_H
