#ifndef HPR_CORE_REPORT_H
#define HPR_CORE_REPORT_H

/// \file report.h
/// Human-readable rendering of assessment results.
///
/// The two-phase framework's outputs are structured (verdicts, margins,
/// per-suffix diagnostics); operators reading logs or CLI output want
/// prose.  These helpers produce stable, line-oriented text so the same
/// rendering serves the CLI tool, the examples and log pipelines.

#include <string>

#include "core/changepoint.h"
#include "core/multi_test.h"
#include "core/two_phase.h"

namespace hpr::core {

/// One-line summary of a single behavior test.
/// e.g. "PASS  d=0.1023 <= eps=0.2411 (p^=0.932, 40 windows)".
[[nodiscard]] std::string describe(const BehaviorTestResult& result);

/// Multi-line summary of a multi-test: overall verdict plus, when
/// details were collected, one line per suffix stage.
[[nodiscard]] std::string describe(const MultiTestResult& result);

/// Multi-line summary of a full assessment: screening verdict, trust
/// value (or why it is withheld), and the first failing suffix if any.
[[nodiscard]] std::string describe(const Assessment& assessment);

/// One line per detected regime of an adaptive test.
[[nodiscard]] std::string describe(const AdaptiveTestResult& result);

}  // namespace hpr::core

#endif  // HPR_CORE_REPORT_H
