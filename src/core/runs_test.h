#ifndef HPR_CORE_RUNS_TEST_H
#define HPR_CORE_RUNS_TEST_H

/// \file runs_test.h
/// Wald-Wolfowitz runs test as a supplementary behavior screen.
///
/// The paper (§3.1) notes that honest-player screening "shares similarity
/// to pseudo random sequence testing" (NIST SP 800-22, its reference
/// [12]) but that those suites assume the success probability is known.
/// The runs test sidesteps that: conditioned on the observed counts of
/// good/bad outcomes, the number of runs R of an exchangeable (honest)
/// sequence has known mean and variance
///
///     mu = 1 + 2*n1*n0/n,   sigma^2 = 2*n1*n0*(2*n1*n0 - n) / (n^2 (n-1)),
///
/// so z = (R - mu)/sigma is asymptotically standard normal with *no*
/// Monte-Carlo calibration at all.  Too few runs exposes clustering
/// (hibernation bursts, colluder blocks after re-ordering); too many runs
/// exposes rigid alternation (tight periodic attacks).  It complements
/// the distribution test: the two condition on different statistics, and
/// the tests catch partially disjoint manipulation patterns
/// (bench/ablation_runs_test compares them head-to-head).

#include <cstdint>
#include <span>

#include "repsys/types.h"

namespace hpr::core {

/// Outcome of one runs test.
struct RunsTestResult {
    bool passed = true;
    bool sufficient = false;  ///< both outcome kinds frequent enough

    std::size_t runs = 0;         ///< observed maximal-run count R
    double expected_runs = 0.0;   ///< mu under exchangeability
    double z = 0.0;               ///< standardized statistic
    double z_threshold = 0.0;     ///< two-sided acceptance bound
    std::size_t good = 0;
    std::size_t bad = 0;

    /// Negative z: fewer runs than expected (clustered); positive:
    /// more runs (over-alternating).
    [[nodiscard]] bool clustered() const noexcept { return z < 0.0; }
};

/// Configuration of the runs test.
struct RunsTestConfig {
    double confidence = 0.95;

    /// Minimum count of *each* outcome kind for the normal approximation
    /// to hold (classical guidance: >= 10).
    std::size_t min_each = 10;
};

/// Stateless Wald-Wolfowitz tester.
class RunsTest {
public:
    explicit RunsTest(RunsTestConfig config = {});

    [[nodiscard]] RunsTestResult test(std::span<const std::uint8_t> outcomes) const;
    [[nodiscard]] RunsTestResult test(std::span<const repsys::Feedback> feedbacks) const;

    [[nodiscard]] const RunsTestConfig& config() const noexcept { return config_; }

private:
    RunsTestConfig config_;
    double z_threshold_;
};

}  // namespace hpr::core

#endif  // HPR_CORE_RUNS_TEST_H
