#include "core/window_stats.h"

#include <stdexcept>

namespace hpr::core {
namespace {

template <typename Sequence, typename IsGood>
WindowStats window_stats_impl(const Sequence& seq, std::uint32_t window_size,
                              IsGood is_good) {
    if (window_size == 0) {
        throw std::invalid_argument("compute_window_stats: window size must be > 0");
    }
    WindowStats stats;
    stats.window_size = window_size;
    const std::size_t n = seq.size();
    const std::size_t k = n / window_size;
    stats.good_counts.reserve(k);
    stats.transactions_used = k * window_size;
    // Windows anchored at the newest end: the oldest n - k*m transactions
    // are skipped.
    const std::size_t offset = n - stats.transactions_used;
    for (std::size_t w = 0; w < k; ++w) {
        // good_counts is ordered newest window first.
        const std::size_t begin = offset + (k - 1 - w) * window_size;
        std::uint32_t good = 0;
        for (std::size_t i = begin; i < begin + window_size; ++i) {
            if (is_good(seq[i])) ++good;
        }
        stats.good_counts.push_back(good);
        stats.good_total += good;
    }
    return stats;
}

}  // namespace

stats::EmpiricalDistribution WindowStats::distribution() const {
    stats::EmpiricalDistribution dist{window_size};
    for (const std::uint32_t g : good_counts) dist.add(g);
    return dist;
}

WindowStats compute_window_stats(std::span<const repsys::Feedback> feedbacks,
                                 std::uint32_t window_size) {
    return window_stats_impl(feedbacks, window_size,
                             [](const repsys::Feedback& f) { return f.good(); });
}

WindowStats compute_window_stats(std::span<const std::uint8_t> outcomes,
                                 std::uint32_t window_size) {
    return window_stats_impl(outcomes, window_size,
                             [](std::uint8_t o) { return o != 0; });
}

}  // namespace hpr::core
