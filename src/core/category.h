#ifndef HPR_CORE_CATEGORY_H
#define HPR_CORE_CATEGORY_H

/// \file category.h
/// Category-partitioned behavior testing (paper §4, closing discussion).
///
/// A server may legitimately provide different service quality to
/// different client categories (the paper's example: a US movie server
/// serving North America well but Africa poorly).  Treating all
/// transactions as one population would raise false alerts, so this
/// module partitions feedbacks by a user-supplied categorizer and runs
/// an independent behavior test per category.  A client then consults
/// only the categories it cares about; false alerts in unexpected
/// categories point at service-quality factors the deployment had not
/// modeled — the "adaptively discover important factors" use the paper
/// describes.

#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/behavior_test.h"
#include "core/multi_test.h"
#include "repsys/types.h"

namespace hpr::core {

/// Maps a feedback to a category label (e.g. by client region).
using Categorizer = std::function<std::string(const repsys::Feedback&)>;

/// Screening results per category.
struct CategoryTestResult {
    /// Per-category multi-test results, keyed by category label.
    std::map<std::string, MultiTestResult> per_category;

    /// Every testable category passed.
    [[nodiscard]] bool all_passed() const noexcept {
        for (const auto& [label, result] : per_category) {
            if (!result.passed) return false;
        }
        return true;
    }

    /// Labels of failing categories.
    [[nodiscard]] std::vector<std::string> failed_categories() const;
};

/// Partition a feedback sequence by category, preserving time order
/// inside each partition.
[[nodiscard]] std::map<std::string, std::vector<repsys::Feedback>> partition_by_category(
    std::span<const repsys::Feedback> feedbacks, const Categorizer& categorizer);

/// Behavior testing applied independently to each category.
class CategoryTest {
public:
    CategoryTest(MultiTestConfig config, Categorizer categorizer,
                 std::shared_ptr<stats::Calibrator> calibrator = nullptr);

    /// Multi-test every category.
    [[nodiscard]] CategoryTestResult test(
        std::span<const repsys::Feedback> feedbacks) const;

    /// Multi-test a single category of interest (paper: "if a user is in
    /// North Carolina, knowing the server's service quality to customers
    /// in North America would suffice").
    [[nodiscard]] MultiTestResult test_category(
        std::span<const repsys::Feedback> feedbacks, const std::string& label) const;

private:
    MultiTest multi_;
    Categorizer categorizer_;
};

}  // namespace hpr::core

#endif  // HPR_CORE_CATEGORY_H
