#include "core/runs_test.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/normal.h"

namespace hpr::core {
namespace {

template <typename Sequence, typename IsGood>
RunsTestResult runs_test_impl(const Sequence& seq, IsGood is_good,
                              const RunsTestConfig& config, double z_threshold) {
    RunsTestResult result;
    result.z_threshold = z_threshold;
    std::size_t runs = 0;
    bool last = false;
    bool first = true;
    for (std::size_t i = 0; i < seq.size(); ++i) {
        const bool good = is_good(seq[i]);
        if (good) {
            ++result.good;
        } else {
            ++result.bad;
        }
        if (first || good != last) ++runs;
        last = good;
        first = false;
    }
    result.runs = runs;
    if (result.good < config.min_each || result.bad < config.min_each) {
        // Not enough of both kinds: the normal approximation (and the
        // test's discriminating power) is void.  Cannot reject honesty.
        result.sufficient = false;
        result.passed = true;
        return result;
    }
    result.sufficient = true;
    const auto n1 = static_cast<double>(result.good);
    const auto n0 = static_cast<double>(result.bad);
    const double n = n1 + n0;
    result.expected_runs = 1.0 + 2.0 * n1 * n0 / n;
    const double variance =
        2.0 * n1 * n0 * (2.0 * n1 * n0 - n) / (n * n * (n - 1.0));
    result.z = (static_cast<double>(runs) - result.expected_runs) /
               std::sqrt(variance);
    result.passed = std::fabs(result.z) <= z_threshold;
    return result;
}

}  // namespace

RunsTest::RunsTest(RunsTestConfig config) : config_(config) {
    if (!(config_.confidence > 0.0 && config_.confidence < 1.0)) {
        throw std::invalid_argument("RunsTest: confidence must be in (0, 1)");
    }
    if (config_.min_each < 2) {
        throw std::invalid_argument("RunsTest: min_each must be >= 2");
    }
    // Two-sided: reject beyond the (1 - alpha/2) normal quantile.
    z_threshold_ = stats::normal_quantile(0.5 + config_.confidence / 2.0);
}

RunsTestResult RunsTest::test(std::span<const std::uint8_t> outcomes) const {
    return runs_test_impl(outcomes, [](std::uint8_t o) { return o != 0; }, config_,
                          z_threshold_);
}

RunsTestResult RunsTest::test(std::span<const repsys::Feedback> feedbacks) const {
    return runs_test_impl(feedbacks,
                          [](const repsys::Feedback& f) { return f.good(); },
                          config_, z_threshold_);
}

}  // namespace hpr::core
