#ifndef HPR_CORE_CHANGEPOINT_H
#define HPR_CORE_CHANGEPOINT_H

/// \file changepoint.h
/// Change-point detection and drift-tolerant behavior testing.
///
/// The paper assumes a static trust value for simplicity and notes that
/// "our techniques can be easily extended to handle dynamic cases"
/// (§3.1); its future work (§7) asks for models covering factors such as
/// time and dates.  This module is that extension.
///
/// ChangePointDetector segments a history's per-window good counts into
/// maximal runs that each look like one binomial: binary segmentation
/// maximizing the binomial log-likelihood-ratio gain, accepted when the
/// gain clears a BIC-style penalty.  An honest player whose uncontrollable
/// quality shifted (an ISP upgrade, a new shipping partner) yields a few
/// long segments; a manipulating attacker yields either rigid
/// within-segment patterns or implausibly many segments.
///
/// AdaptiveBehaviorTest runs the §3.2 distribution test *within each
/// segment*, so honest drift stops raising false alarms while
/// within-regime manipulation is still caught.  It reports the segments,
/// making it double as the paper's suggested tool for "adaptively
/// discovering important factors about a system".

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/behavior_test.h"
#include "core/config.h"
#include "core/window_stats.h"
#include "repsys/types.h"
#include "stats/calibrate.h"

namespace hpr::core {

/// A maximal run of windows consistent with one Bernoulli parameter.
struct Segment {
    std::size_t begin_window = 0;  ///< first window index (oldest-first order)
    std::size_t end_window = 0;    ///< one past the last window
    double p = 0.0;                ///< fitted per-transaction success rate

    [[nodiscard]] std::size_t windows() const noexcept {
        return end_window - begin_window;
    }
};

/// A detected change between two segments.
struct ChangePoint {
    std::size_t window_index = 0;  ///< first window of the new regime
    double p_before = 0.0;
    double p_after = 0.0;
    double gain = 0.0;             ///< log-likelihood-ratio gain of the split
};

/// Tuning of the segmentation.
struct ChangePointConfig {
    std::uint32_t window_size = 10;

    /// Minimum windows per segment (splits closer than this to a
    /// boundary are not considered).
    std::size_t min_segment_windows = 3;

    /// A split is accepted when 2 * (LL(split) - LL(merged)) exceeds
    /// penalty_factor * ln(total windows) — a BIC-style criterion.
    double penalty_factor = 3.0;

    /// Hard cap on recursion (0 = unlimited); a safety valve for
    /// adversarial inputs engineered to fragment endlessly.
    std::size_t max_change_points = 32;
};

/// Binary-segmentation change-point detector on window good counts.
class ChangePointDetector {
public:
    explicit ChangePointDetector(ChangePointConfig config = {});

    /// Segment a feedback sequence (oldest first).
    [[nodiscard]] std::vector<Segment> segment(
        std::span<const repsys::Feedback> feedbacks) const;
    [[nodiscard]] std::vector<Segment> segment(
        std::span<const std::uint8_t> outcomes) const;

    /// Segment precomputed window good counts (oldest first).
    [[nodiscard]] std::vector<Segment> segment_windows(
        std::span<const std::uint32_t> good_counts) const;

    /// Change points between the segments of segment_windows().
    [[nodiscard]] std::vector<ChangePoint> detect(
        std::span<const repsys::Feedback> feedbacks) const;
    [[nodiscard]] std::vector<ChangePoint> detect(
        std::span<const std::uint8_t> outcomes) const;

    [[nodiscard]] const ChangePointConfig& config() const noexcept { return config_; }

private:
    [[nodiscard]] std::vector<ChangePoint> change_points_from(
        std::span<const std::uint32_t> good_counts) const;

    ChangePointConfig config_;
};

/// Result of drift-tolerant behavior testing.
struct AdaptiveTestResult {
    bool passed = true;
    bool sufficient = false;
    std::vector<Segment> segments;
    std::vector<BehaviorTestResult> per_segment;  ///< aligned with segments

    /// Index of the first failing segment, or size() if none.
    [[nodiscard]] std::size_t first_failed() const noexcept {
        for (std::size_t i = 0; i < per_segment.size(); ++i) {
            if (!per_segment[i].passed) return i;
        }
        return per_segment.size();
    }
};

/// §3.2 behavior testing applied per detected regime.
class AdaptiveBehaviorTest {
public:
    AdaptiveBehaviorTest(BehaviorTestConfig test_config = {},
                         ChangePointConfig segmentation = {},
                         std::shared_ptr<stats::Calibrator> calibrator = nullptr);

    [[nodiscard]] AdaptiveTestResult test(
        std::span<const repsys::Feedback> feedbacks) const;
    [[nodiscard]] AdaptiveTestResult test(std::span<const std::uint8_t> outcomes) const;

private:
    [[nodiscard]] AdaptiveTestResult test_windows(const WindowStats& stats) const;

    BehaviorTest single_;
    ChangePointDetector detector_;
};

}  // namespace hpr::core

#endif  // HPR_CORE_CHANGEPOINT_H
