#include "core/multi_test.h"

#include <limits>
#include <stdexcept>

#include "core/scratch.h"
#include "obs/trace.h"

namespace hpr::core {
namespace {

/// Append evidence of one ladder stage to the active trace, if any.
void trace_stage(obs::TraceContext* trace, const BehaviorTestResult& result,
                 std::size_t suffix_length) {
    if (trace == nullptr) return;
    obs::StageEvidence evidence;
    evidence.suffix_length = suffix_length;
    evidence.windows = result.windows;
    evidence.p_hat = result.p_hat;
    evidence.distance = result.distance;
    evidence.epsilon = result.threshold;
    evidence.sufficient = result.sufficient;
    evidence.passed = result.passed;
    trace->record()->stages.push_back(evidence);
}

/// Number of suffix stages for a history of n transactions: suffix
/// lengths n, n-step, ... while at least min_windows complete windows
/// remain.  Returns 0 when even the full history is too short.
std::size_t stage_count(std::size_t n, std::size_t step, std::uint32_t m,
                        std::size_t min_windows) {
    const std::size_t min_len = min_windows * m;
    if (n < min_len) return 0;
    return (n - min_len) / step + 1;
}

/// Per-stage confidence implementing the family-wise (Bonferroni)
/// correction when enabled; 0 means "use the configured default".
double stage_confidence(const MultiTestConfig& config, std::size_t stages) {
    if (!config.bonferroni || stages == 0) return 0.0;
    return 1.0 - (1.0 - config.base.confidence) / static_cast<double>(stages);
}

void finalize(MultiTestResult& result) {
    if (result.stages_run == 0) {
        result.min_margin = 0.0;
        result.sufficient = false;
        result.passed = true;
    }
}

}  // namespace

MultiTest::MultiTest(MultiTestConfig config,
                     std::shared_ptr<stats::Calibrator> calibrator)
    : config_(config), single_(config.base, std::move(calibrator)) {
    config_.step = config_.effective_step();
}

template <typename Sequence, typename IsGood>
MultiTestResult MultiTest::test_incremental(const Sequence& seq, IsGood is_good) const {
    const std::uint32_t m = config_.base.window_size;
    const std::size_t n = seq.size();
    const std::size_t step = config_.step;
    const std::size_t stages = stage_count(n, step, m, config_.base.min_windows);

    MultiTestResult result;
    result.min_margin = std::numeric_limits<double>::infinity();
    if (stages == 0) {
        finalize(result);
        return result;
    }
    result.sufficient = true;

    // Windows are anchored at the newest end of the full sequence; window
    // w covers [n - (w+1)m, n - w*m).  The suffix of length L contains
    // exactly floor(L/m) of these windows, so suffixes share windows and
    // the statistics accumulate incrementally from shortest to longest.
    const auto windows_of = [&](std::size_t stage) {
        // stage 0 = shortest suffix, stage stages-1 = full history.
        const std::size_t suffix_len = n - (stages - 1 - stage) * step;
        return suffix_len / m;
    };

    // This loop is the outermost ladder on this thread, so it owns the
    // thread-local ladder slot (core/scratch.h); the single test below
    // only borrows the histogram and never touches the arena itself.
    stats::EmpiricalDistribution& counts = assessment_scratch().ladder_counts;
    counts.reset(m);
    std::size_t added_windows = 0;
    const auto add_windows_upto = [&](std::size_t target) {
        while (added_windows < target) {
            const std::size_t w = added_windows;  // 0 = newest window
            const std::size_t begin = n - (w + 1) * m;
            std::uint32_t good = 0;
            for (std::size_t i = begin; i < begin + m; ++i) {
                if (is_good(seq[i])) ++good;
            }
            counts.add(good);
            ++added_windows;
        }
    };

    obs::TraceSpan ladder{"phase1/ladder"};
    obs::TraceContext* trace = obs::TraceContext::current();
    const bool span_stages = trace != nullptr && trace->span_stages();
    if (trace != nullptr) trace->record()->stages.reserve(stages);
    if (config_.collect_details) result.details.reserve(stages);

    const double confidence = stage_confidence(config_, stages);
    for (std::size_t stage = 0; stage < stages; ++stage) {
        obs::TraceSpan stage_span{"phase1/stage", span_stages};
        add_windows_upto(windows_of(stage));
        const BehaviorTestResult stage_result = single_.test(counts, confidence);
        trace_stage(trace, stage_result, n - (stages - 1 - stage) * step);
        ++result.stages_run;
        if (stage_result.sufficient && stage_result.margin() < result.min_margin) {
            result.min_margin = stage_result.margin();
        }
        if (config_.collect_details) result.details.push_back(stage_result);
        if (!stage_result.passed) {
            result.passed = false;
            if (!result.failed_suffix_length) {
                result.failed_suffix_length = n - (stages - 1 - stage) * step;
                result.failure = stage_result;
            }
            if (config_.stop_on_failure) break;
        }
    }
    finalize(result);
    return result;
}

MultiTestResult MultiTest::test(std::span<const repsys::Feedback> feedbacks) const {
    return test_incremental(feedbacks,
                            [](const repsys::Feedback& f) { return f.good(); });
}

MultiTestResult MultiTest::test(std::span<const std::uint8_t> outcomes) const {
    return test_incremental(outcomes, [](std::uint8_t o) { return o != 0; });
}

template <typename Subspan>
MultiTestResult MultiTest::test_naive_impl(std::size_t n, Subspan suffix) const {
    const std::uint32_t m = config_.base.window_size;
    const std::size_t step = config_.step;
    const std::size_t stages = stage_count(n, step, m, config_.base.min_windows);

    MultiTestResult result;
    result.min_margin = std::numeric_limits<double>::infinity();
    if (stages == 0) {
        finalize(result);
        return result;
    }
    result.sufficient = true;

    obs::TraceSpan ladder{"phase1/ladder"};
    obs::TraceContext* trace = obs::TraceContext::current();
    const bool span_stages = trace != nullptr && trace->span_stages();
    if (trace != nullptr) trace->record()->stages.reserve(stages);

    const double confidence = stage_confidence(config_, stages);
    for (std::size_t stage = 0; stage < stages; ++stage) {
        obs::TraceSpan stage_span{"phase1/stage", span_stages};
        const std::size_t suffix_len = n - (stages - 1 - stage) * step;
        const BehaviorTestResult stage_result = single_.test(
            compute_window_stats(suffix(suffix_len), m).distribution(), confidence);
        trace_stage(trace, stage_result, suffix_len);
        ++result.stages_run;
        if (stage_result.sufficient && stage_result.margin() < result.min_margin) {
            result.min_margin = stage_result.margin();
        }
        if (config_.collect_details) result.details.push_back(stage_result);
        if (!stage_result.passed) {
            result.passed = false;
            if (!result.failed_suffix_length) {
                result.failed_suffix_length = suffix_len;
                result.failure = stage_result;
            }
            if (config_.stop_on_failure) break;
        }
    }
    finalize(result);
    return result;
}

MultiTestResult MultiTest::test_naive(std::span<const repsys::Feedback> feedbacks) const {
    const std::size_t n = feedbacks.size();
    return test_naive_impl(n, [&](std::size_t len) {
        return feedbacks.subspan(n - len, len);
    });
}

MultiTestResult MultiTest::test_naive(std::span<const std::uint8_t> outcomes) const {
    const std::size_t n = outcomes.size();
    return test_naive_impl(n, [&](std::size_t len) {
        return outcomes.subspan(n - len, len);
    });
}

}  // namespace hpr::core
