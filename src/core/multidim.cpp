#include "core/multidim.h"

#include <algorithm>
#include <stdexcept>

namespace hpr::core {

std::vector<std::string> MultiDimensionalResult::failed_dimensions() const {
    std::vector<std::string> failed;
    for (const auto& [name, result] : per_dimension) {
        if (!result.passed) failed.push_back(name);
    }
    return failed;
}

MultiDimensionalTest::MultiDimensionalTest(std::vector<std::string> dimensions,
                                           MultiTestConfig config,
                                           std::shared_ptr<stats::Calibrator> calibrator)
    : dimensions_(std::move(dimensions)), multi_(config, std::move(calibrator)) {
    if (dimensions_.empty()) {
        throw std::invalid_argument("MultiDimensionalTest: need >= 1 dimension");
    }
    auto sorted = dimensions_;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
        throw std::invalid_argument("MultiDimensionalTest: duplicate dimension name");
    }
}

std::vector<std::uint8_t> MultiDimensionalTest::outcomes_of(
    std::span<const DimensionalFeedback> feedbacks, std::size_t index) const {
    std::vector<std::uint8_t> outcomes;
    outcomes.reserve(feedbacks.size());
    for (const DimensionalFeedback& f : feedbacks) {
        if (f.ratings.size() != dimensions_.size()) {
            throw std::invalid_argument(
                "MultiDimensionalTest: rating count does not match dimensions");
        }
        outcomes.push_back(repsys::is_good(f.ratings[index]) ? 1 : 0);
    }
    return outcomes;
}

MultiDimensionalResult MultiDimensionalTest::test(
    std::span<const DimensionalFeedback> feedbacks) const {
    MultiDimensionalResult result;
    for (std::size_t d = 0; d < dimensions_.size(); ++d) {
        const auto outcomes = outcomes_of(feedbacks, d);
        MultiTestResult dimension_result =
            multi_.test(std::span<const std::uint8_t>{outcomes});
        if (dimension_result.sufficient) result.sufficient = true;
        if (!dimension_result.passed) result.passed = false;
        result.per_dimension.emplace(dimensions_[d], std::move(dimension_result));
    }
    return result;
}

MultiTestResult MultiDimensionalTest::test_dimension(
    std::span<const DimensionalFeedback> feedbacks,
    const std::string& dimension) const {
    const auto it = std::find(dimensions_.begin(), dimensions_.end(), dimension);
    if (it == dimensions_.end()) {
        throw std::invalid_argument("MultiDimensionalTest: unknown dimension '" +
                                    dimension + "'");
    }
    const auto outcomes = outcomes_of(
        feedbacks, static_cast<std::size_t>(it - dimensions_.begin()));
    return multi_.test(std::span<const std::uint8_t>{outcomes});
}

}  // namespace hpr::core
