#include "core/collusion.h"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.h"

namespace hpr::core {

std::vector<repsys::Feedback> reorder_by_issuer(
    std::span<const repsys::Feedback> feedbacks) {
    obs::TraceSpan span{"reorder"};
    struct Group {
        std::size_t count = 0;
        std::size_t first_index = 0;  // index of the client's first feedback
    };
    std::unordered_map<repsys::EntityId, Group> groups;
    groups.reserve(feedbacks.size());
    for (std::size_t i = 0; i < feedbacks.size(); ++i) {
        auto [it, inserted] = groups.try_emplace(feedbacks[i].client);
        if (inserted) it->second.first_index = i;
        ++it->second.count;
    }

    std::vector<repsys::EntityId> order;
    order.reserve(groups.size());
    for (const auto& [client, group] : groups) order.push_back(client);
    std::sort(order.begin(), order.end(),
              [&](repsys::EntityId a, repsys::EntityId b) {
                  const Group& ga = groups.at(a);
                  const Group& gb = groups.at(b);
                  if (ga.count != gb.count) return ga.count > gb.count;
                  return ga.first_index < gb.first_index;
              });

    // Bucket feedbacks per client preserving time order, then concatenate
    // buckets in the computed group order.
    std::unordered_map<repsys::EntityId, std::vector<repsys::Feedback>> buckets;
    buckets.reserve(groups.size());
    for (const auto& [client, group] : groups) buckets[client].reserve(group.count);
    for (const repsys::Feedback& f : feedbacks) buckets[f.client].push_back(f);

    std::vector<repsys::Feedback> reordered;
    reordered.reserve(feedbacks.size());
    for (const repsys::EntityId client : order) {
        const auto& bucket = buckets[client];
        reordered.insert(reordered.end(), bucket.begin(), bucket.end());
    }

    if (auto* trace = obs::TraceContext::current()) {
        obs::ReorderSummary& summary = trace->record()->reorder;
        // An assessment may reorder more than once (screening + runs
        // test); the permutation is identical each time, so keep the
        // first summary.
        if (!summary.applied && !feedbacks.empty()) {
            summary.applied = true;
            summary.issuers = order.size();
            summary.largest_group = groups.at(order.front()).count;
            std::size_t displaced = 0;
            for (std::size_t i = 0; i < feedbacks.size(); ++i) {
                if (!(reordered[i] == feedbacks[i])) ++displaced;
            }
            summary.displaced_fraction = static_cast<double>(displaced) /
                                         static_cast<double>(feedbacks.size());
        }
    }
    return reordered;
}

CollusionResilientTest::CollusionResilientTest(
    MultiTestConfig config, std::shared_ptr<stats::Calibrator> calibrator)
    : multi_(config, std::move(calibrator)) {}

BehaviorTestResult CollusionResilientTest::test_single(
    std::span<const repsys::Feedback> feedbacks) const {
    const auto reordered = reorder_by_issuer(feedbacks);
    return multi_.single().test(std::span<const repsys::Feedback>{reordered});
}

MultiTestResult CollusionResilientTest::test_multi(
    std::span<const repsys::Feedback> feedbacks) const {
    const auto reordered = reorder_by_issuer(feedbacks);
    return multi_.test(std::span<const repsys::Feedback>{reordered});
}

}  // namespace hpr::core
