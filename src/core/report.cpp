#include "core/report.h"

#include <iomanip>
#include <sstream>

namespace hpr::core {
namespace {

std::ostream& fixed4(std::ostream& out) { return out << std::fixed << std::setprecision(4); }

}  // namespace

std::string describe(const BehaviorTestResult& result) {
    std::ostringstream out;
    if (!result.sufficient) {
        out << "INSUFFICIENT  only " << result.windows
            << " complete window(s); cannot screen";
        return out.str();
    }
    out << (result.passed ? "PASS" : "FAIL") << "  d=";
    fixed4(out) << result.distance << (result.passed ? " <= " : " > ")
                << "eps=" << result.threshold << " (p^=" << result.p_hat << ", "
                << result.windows << " windows)";
    return out.str();
}

std::string describe(const MultiTestResult& result) {
    std::ostringstream out;
    if (!result.sufficient) {
        out << "INSUFFICIENT  history too short for any suffix test\n";
        return out.str();
    }
    out << (result.passed ? "PASS" : "FAIL") << "  " << result.stages_run
        << " suffix stage(s), min margin ";
    fixed4(out) << result.min_margin << "\n";
    if (result.failed_suffix_length) {
        out << "  shortest failing suffix: " << *result.failed_suffix_length
            << " transactions\n";
    }
    for (std::size_t i = 0; i < result.details.size(); ++i) {
        out << "  stage " << i << ": " << describe(result.details[i]) << "\n";
    }
    return out.str();
}

std::string describe(const Assessment& assessment) {
    std::ostringstream out;
    out << "verdict: " << to_string(assessment.verdict) << "\n";
    switch (assessment.verdict) {
        case Verdict::kSuspicious:
            out << "trust: withheld - the transaction history is inconsistent "
                   "with the honest-player model\n";
            if (assessment.screening.failure) {
                out << "  " << describe(*assessment.screening.failure) << "\n";
            }
            break;
        case Verdict::kAssessed:
            out << "trust: ";
            fixed4(out) << assessment.trust.value_or(0.0) << " (screened over "
                        << assessment.screening.stages_run << " stage(s))\n";
            break;
        case Verdict::kInsufficientHistory:
            out << "trust: ";
            fixed4(out) << assessment.trust.value_or(0.0)
                        << " (UNSCREENED - history too short; treat as high "
                           "risk)\n";
            break;
    }
    return out.str();
}

std::string describe(const AdaptiveTestResult& result) {
    std::ostringstream out;
    if (!result.sufficient) {
        out << "INSUFFICIENT  history too short to segment\n";
        return out.str();
    }
    out << (result.passed ? "PASS" : "FAIL") << "  " << result.segments.size()
        << " regime(s)\n";
    for (std::size_t i = 0; i < result.segments.size(); ++i) {
        const Segment& segment = result.segments[i];
        out << "  regime " << i << ": windows [" << segment.begin_window << ", "
            << segment.end_window << ") p=";
        fixed4(out) << segment.p << " -> "
                    << (result.per_segment[i].passed ? "consistent" : "suspicious")
                    << "\n";
    }
    return out.str();
}

}  // namespace hpr::core
