#include "core/changepoint.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hpr::core {
namespace {

/// Oldest-first per-window good counts (the oldest partial remainder is
/// dropped, mirroring compute_window_stats' newest-anchored truncation as
/// closely as a stream-ordered view allows).
template <typename Sequence, typename IsGood>
std::vector<std::uint32_t> window_counts_oldest_first(const Sequence& seq,
                                                      std::uint32_t m,
                                                      IsGood is_good) {
    const std::size_t n = seq.size();
    const std::size_t k = n / m;
    std::vector<std::uint32_t> counts;
    counts.reserve(k);
    const std::size_t offset = n - k * m;
    for (std::size_t w = 0; w < k; ++w) {
        const std::size_t begin = offset + w * m;
        std::uint32_t good = 0;
        for (std::size_t i = begin; i < begin + m; ++i) {
            if (is_good(seq[i])) ++good;
        }
        counts.push_back(good);
    }
    return counts;
}

/// Binomial log-likelihood of a segment with `good` successes out of
/// `total` trials at its fitted rate (binomial coefficients cancel in
/// likelihood ratios and are omitted).
double segment_log_likelihood(double good, double total) {
    if (total <= 0.0) return 0.0;
    const double p = good / total;
    double ll = 0.0;
    if (good > 0.0) ll += good * std::log(p);
    if (total - good > 0.0) ll += (total - good) * std::log1p(-p);
    return ll;
}

}  // namespace

ChangePointDetector::ChangePointDetector(ChangePointConfig config) : config_(config) {
    if (config_.window_size == 0) {
        throw std::invalid_argument("ChangePointDetector: window size must be > 0");
    }
    if (config_.min_segment_windows == 0) {
        throw std::invalid_argument(
            "ChangePointDetector: min_segment_windows must be > 0");
    }
    if (!(config_.penalty_factor >= 0.0)) {
        throw std::invalid_argument("ChangePointDetector: penalty must be >= 0");
    }
}

std::vector<ChangePoint> ChangePointDetector::change_points_from(
    std::span<const std::uint32_t> good_counts) const {
    const std::size_t k = good_counts.size();
    std::vector<ChangePoint> found;
    if (k < 2 * config_.min_segment_windows) return found;

    const double m = static_cast<double>(config_.window_size);
    std::vector<double> prefix_good(k + 1, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
        prefix_good[i + 1] = prefix_good[i] + good_counts[i];
    }
    const auto goods_in = [&](std::size_t a, std::size_t b) {
        return prefix_good[b] - prefix_good[a];
    };
    const double threshold =
        config_.penalty_factor * std::log(static_cast<double>(k) + 1.0);

    // Binary segmentation: repeatedly split the segment whose best split
    // has the largest gain above the penalty.
    struct Todo {
        std::size_t begin;
        std::size_t end;
    };
    std::vector<Todo> todo{{0, k}};
    while (!todo.empty()) {
        if (config_.max_change_points != 0 &&
            found.size() >= config_.max_change_points) {
            break;
        }
        const Todo current = todo.back();
        todo.pop_back();
        const std::size_t len = current.end - current.begin;
        if (len < 2 * config_.min_segment_windows) continue;

        const double whole_ll = segment_log_likelihood(
            goods_in(current.begin, current.end), static_cast<double>(len) * m);
        double best_gain = 0.0;
        std::size_t best_split = 0;
        for (std::size_t t = current.begin + config_.min_segment_windows;
             t + config_.min_segment_windows <= current.end; ++t) {
            const double left_ll = segment_log_likelihood(
                goods_in(current.begin, t),
                static_cast<double>(t - current.begin) * m);
            const double right_ll =
                segment_log_likelihood(goods_in(t, current.end),
                                       static_cast<double>(current.end - t) * m);
            const double gain = 2.0 * (left_ll + right_ll - whole_ll);
            if (gain > best_gain) {
                best_gain = gain;
                best_split = t;
            }
        }
        if (best_gain <= threshold || best_split == 0) continue;

        ChangePoint cp;
        cp.window_index = best_split;
        cp.gain = best_gain;
        cp.p_before = goods_in(current.begin, best_split) /
                      (static_cast<double>(best_split - current.begin) * m);
        cp.p_after = goods_in(best_split, current.end) /
                     (static_cast<double>(current.end - best_split) * m);
        found.push_back(cp);
        todo.push_back({current.begin, best_split});
        todo.push_back({best_split, current.end});
    }

    std::sort(found.begin(), found.end(),
              [](const ChangePoint& a, const ChangePoint& b) {
                  return a.window_index < b.window_index;
              });
    return found;
}

std::vector<Segment> ChangePointDetector::segment_windows(
    std::span<const std::uint32_t> good_counts) const {
    const auto change_points = change_points_from(good_counts);
    std::vector<Segment> segments;
    const double m = static_cast<double>(config_.window_size);
    std::size_t begin = 0;
    const auto close_segment = [&](std::size_t end) {
        if (end == begin) return;
        double good = 0.0;
        for (std::size_t i = begin; i < end; ++i) good += good_counts[i];
        segments.push_back(
            Segment{begin, end, good / (static_cast<double>(end - begin) * m)});
        begin = end;
    };
    for (const ChangePoint& cp : change_points) close_segment(cp.window_index);
    close_segment(good_counts.size());
    return segments;
}

std::vector<Segment> ChangePointDetector::segment(
    std::span<const repsys::Feedback> feedbacks) const {
    const auto counts = window_counts_oldest_first(
        feedbacks, config_.window_size,
        [](const repsys::Feedback& f) { return f.good(); });
    return segment_windows(counts);
}

std::vector<Segment> ChangePointDetector::segment(
    std::span<const std::uint8_t> outcomes) const {
    const auto counts = window_counts_oldest_first(
        outcomes, config_.window_size, [](std::uint8_t o) { return o != 0; });
    return segment_windows(counts);
}

std::vector<ChangePoint> ChangePointDetector::detect(
    std::span<const repsys::Feedback> feedbacks) const {
    const auto counts = window_counts_oldest_first(
        feedbacks, config_.window_size,
        [](const repsys::Feedback& f) { return f.good(); });
    return change_points_from(counts);
}

std::vector<ChangePoint> ChangePointDetector::detect(
    std::span<const std::uint8_t> outcomes) const {
    const auto counts = window_counts_oldest_first(
        outcomes, config_.window_size, [](std::uint8_t o) { return o != 0; });
    return change_points_from(counts);
}

namespace {

/// The segmentation must window exactly like the test.
ChangePointConfig aligned_to(ChangePointConfig segmentation, std::uint32_t window) {
    segmentation.window_size = window;
    return segmentation;
}

}  // namespace

AdaptiveBehaviorTest::AdaptiveBehaviorTest(BehaviorTestConfig test_config,
                                           ChangePointConfig segmentation,
                                           std::shared_ptr<stats::Calibrator> calibrator)
    : single_(test_config, std::move(calibrator)),
      detector_(aligned_to(segmentation, test_config.window_size)) {}

AdaptiveTestResult AdaptiveBehaviorTest::test_windows(const WindowStats& stats) const {
    // WindowStats orders counts newest-first; segmentation wants stream
    // order.
    std::vector<std::uint32_t> oldest_first{stats.good_counts.rbegin(),
                                            stats.good_counts.rend()};
    AdaptiveTestResult result;
    if (oldest_first.size() < single_.config().min_windows) {
        result.sufficient = false;
        result.passed = true;
        return result;
    }
    result.sufficient = true;
    result.segments = detector_.segment_windows(oldest_first);
    for (const Segment& segment : result.segments) {
        stats::EmpiricalDistribution counts{single_.config().window_size};
        for (std::size_t i = segment.begin_window; i < segment.end_window; ++i) {
            counts.add(oldest_first[i]);
        }
        const BehaviorTestResult segment_result = single_.test(counts);
        if (!segment_result.passed) result.passed = false;
        result.per_segment.push_back(segment_result);
    }
    return result;
}

AdaptiveTestResult AdaptiveBehaviorTest::test(
    std::span<const repsys::Feedback> feedbacks) const {
    return test_windows(
        compute_window_stats(feedbacks, single_.config().window_size));
}

AdaptiveTestResult AdaptiveBehaviorTest::test(
    std::span<const std::uint8_t> outcomes) const {
    return test_windows(compute_window_stats(outcomes, single_.config().window_size));
}

}  // namespace hpr::core
