#ifndef HPR_CORE_TWO_PHASE_H
#define HPR_CORE_TWO_PHASE_H

/// \file two_phase.h
/// The two-phase trust assessment framework (paper Fig. 1 and Fig. 2):
///
///   phase 1  — screen the server's transaction history against the
///              honest-player model (single test, multi-test, optionally
///              on the collusion-resilient re-ordering);
///   phase 2  — only if phase 1 passes, apply a conventional trust
///              function and return the trust value.
///
/// Histories that fail phase 1 are reported suspicious and get no trust
/// value — the "Alert; Abort" branch of the Fig. 2 pseudocode.

#include <memory>
#include <optional>
#include <string>

#include "core/collusion.h"
#include "core/config.h"
#include "core/multi_test.h"
#include "core/runs_test.h"
#include "repsys/history.h"
#include "repsys/trust.h"

namespace hpr::core {

/// Which phase-1 screening to run.
enum class ScreeningMode : std::uint8_t {
    kNone,    ///< phase 2 only — the "traditional approach" baseline
    kSingle,  ///< single behavior test (paper "Scheme 1")
    kMulti,   ///< multi-testing (paper "Scheme 2")
};

[[nodiscard]] const char* to_string(ScreeningMode mode) noexcept;

/// Full configuration of a two-phase assessor.
struct TwoPhaseConfig {
    MultiTestConfig test{};
    ScreeningMode mode = ScreeningMode::kMulti;

    /// Run the screening on the issuer-reordered sequence (paper §4).
    bool collusion_resilient = false;

    /// Additionally require the Wald-Wolfowitz runs test to pass
    /// (core/runs_test.h): a calibration-free spacing screen that catches
    /// adjacency anomalies (bursts, rigid alternation) the window
    /// statistics can dilute.  Applied to the same sequence the window
    /// screening sees (issuer-reordered when collusion_resilient is set).
    bool require_runs_test = false;

    /// Parameters of the supplementary runs test.
    RunsTestConfig runs{};
};

/// What the assessor concluded about a server.
enum class Verdict : std::uint8_t {
    kSuspicious,           ///< phase-1 screening failed: alert, no trust value
    kAssessed,             ///< screening passed; trust value available
    kInsufficientHistory,  ///< too short to screen; trust value available,
                           ///< but the caller should treat it as high risk
};

[[nodiscard]] const char* to_string(Verdict verdict) noexcept;

/// Result of assessing one server.
struct Assessment {
    Verdict verdict = Verdict::kInsufficientHistory;

    /// Trust value from phase 2; absent when the server is suspicious.
    std::optional<double> trust;

    /// Phase-1 detail (meaningful unless mode is kNone).
    MultiTestResult screening;

    /// Supplementary runs-test detail (present iff require_runs_test).
    std::optional<RunsTestResult> runs;

    /// True when the server may be transacted with at the given
    /// threshold: not suspicious and trust >= threshold.
    [[nodiscard]] bool acceptable(double threshold) const noexcept {
        return verdict != Verdict::kSuspicious && trust.has_value() &&
               *trust >= threshold;
    }
};

/// The two-phase assessor.  Thread-compatible; the calibration cache it
/// shares is thread-safe, so distinct assessors may share one calibrator.
class TwoPhaseAssessor {
public:
    /// \param trust  phase-2 trust function (must not be null)
    /// \throws std::invalid_argument if trust is null.
    TwoPhaseAssessor(TwoPhaseConfig config,
                     std::shared_ptr<const repsys::TrustFunction> trust,
                     std::shared_ptr<stats::Calibrator> calibrator = nullptr);

    /// Assess a server's history.
    [[nodiscard]] Assessment assess(const repsys::TransactionHistory& history) const;
    [[nodiscard]] Assessment assess(std::span<const repsys::Feedback> feedbacks) const;

    /// Phase 1 only: does this history conform to the honest-player model?
    [[nodiscard]] MultiTestResult screen(std::span<const repsys::Feedback> feedbacks) const;

    /// Convenience: screening passed and trust value >= threshold.
    [[nodiscard]] bool accept(const repsys::TransactionHistory& history,
                              double threshold) const {
        return assess(history).acceptable(threshold);
    }

    [[nodiscard]] const TwoPhaseConfig& config() const noexcept { return config_; }
    [[nodiscard]] const repsys::TrustFunction& trust_function() const noexcept {
        return *trust_;
    }
    [[nodiscard]] const std::shared_ptr<stats::Calibrator>& calibrator() const noexcept;

private:
    TwoPhaseConfig config_;
    std::shared_ptr<const repsys::TrustFunction> trust_;
    MultiTest multi_;
    CollusionResilientTest collusion_;
    RunsTest runs_;
};

}  // namespace hpr::core

#endif  // HPR_CORE_TWO_PHASE_H
