#ifndef HPR_CORE_WINDOW_STATS_H
#define HPR_CORE_WINDOW_STATS_H

/// \file window_stats.h
/// Reduction of a feedback sequence to per-window good-transaction counts
/// {G_1..G_k} (paper §3.2).
///
/// Windows are anchored at the *newest* end of the sequence: window 0
/// covers the most recent m transactions, window 1 the m before those,
/// and so on; the oldest (n mod m) transactions are ignored.  Anchoring
/// at the newest end means every suffix of the sequence shares the same
/// window boundaries, which is what lets multi-testing reuse window
/// statistics across suffixes (§5.5).

#include <cstdint>
#include <span>
#include <vector>

#include "repsys/types.h"
#include "stats/empirical.h"

namespace hpr::core {

/// Per-window good counts of a feedback sequence.
struct WindowStats {
    std::uint32_t window_size = 0;          ///< m
    std::vector<std::uint32_t> good_counts; ///< G_i, newest window first
    std::uint64_t good_total = 0;           ///< sum of G_i
    std::size_t transactions_used = 0;      ///< windows() * m

    [[nodiscard]] std::size_t windows() const noexcept { return good_counts.size(); }

    /// p̂ = ΣG_i / (k m); 0 when there are no complete windows.
    [[nodiscard]] double p_hat() const noexcept {
        return transactions_used == 0
                   ? 0.0
                   : static_cast<double>(good_total) /
                         static_cast<double>(transactions_used);
    }

    /// Empirical distribution of the good counts over support {0..m}.
    [[nodiscard]] stats::EmpiricalDistribution distribution() const;
};

/// Compute window stats for a feedback sequence (oldest first).
/// \throws std::invalid_argument if window_size is 0.
[[nodiscard]] WindowStats compute_window_stats(std::span<const repsys::Feedback> feedbacks,
                                               std::uint32_t window_size);

/// Same reduction for a plain outcome sequence (nonzero = good).  Used by
/// the collusion-resilient path after re-ordering and by simulators that
/// do not need full feedback tuples.
[[nodiscard]] WindowStats compute_window_stats(std::span<const std::uint8_t> outcomes,
                                               std::uint32_t window_size);

}  // namespace hpr::core

#endif  // HPR_CORE_WINDOW_STATS_H
