#ifndef HPR_CORE_BEHAVIOR_TEST_H
#define HPR_CORE_BEHAVIOR_TEST_H

/// \file behavior_test.h
/// The single behavior test of paper §3.2 (the pseudocode of Fig. 2):
/// break the history into windows of m transactions, compare the empirical
/// distribution of per-window good counts against B(m, p̂) using the L1
/// distribution distance, and accept iff the distance is below the
/// Monte-Carlo-calibrated threshold ε for the configured confidence.

#include <cstdint>
#include <memory>
#include <span>

#include "core/config.h"
#include "core/window_stats.h"
#include "repsys/types.h"
#include "stats/calibrate.h"

namespace hpr::core {

/// Outcome of one behavior test.
struct BehaviorTestResult {
    /// Whether the history is consistent with the honest-player model.
    /// True whenever `sufficient` is false: a short history carries too
    /// little evidence to *reject* honesty (it is the caller's policy
    /// decision how to treat unscreenable newcomers — see paper §7).
    bool passed = true;

    /// Whether there were at least min_windows complete windows.
    bool sufficient = false;

    double distance = 0.0;    ///< measured distribution distance d
    double threshold = 0.0;   ///< calibrated ε
    double p_hat = 0.0;       ///< estimated trust value ΣG_i / n
    std::size_t windows = 0;  ///< number of complete windows k
    std::size_t transactions_used = 0;  ///< k * m

    /// Signed slack ε - d; negative when the test fails.
    [[nodiscard]] double margin() const noexcept { return threshold - distance; }
};

/// Reusable single-behavior tester.  Stateless apart from the shared
/// calibration cache, so one instance can screen any number of servers.
class BehaviorTest {
public:
    /// \param config      test parameters
    /// \param calibrator  shared threshold calibrator; if null a private
    ///                    one is created from the config.
    explicit BehaviorTest(BehaviorTestConfig config = {},
                          std::shared_ptr<stats::Calibrator> calibrator = nullptr);

    /// Test a feedback sequence (oldest first).
    [[nodiscard]] BehaviorTestResult test(std::span<const repsys::Feedback> feedbacks) const;

    /// Test a raw outcome sequence (nonzero = good, oldest first).
    [[nodiscard]] BehaviorTestResult test(std::span<const std::uint8_t> outcomes) const;

    /// Test precomputed window statistics (the shared core; also the entry
    /// point used by the incremental multi-test).
    [[nodiscard]] BehaviorTestResult test(const WindowStats& stats) const;

    /// Test an empirical window-count distribution directly (the sum of
    /// good transactions is the distribution's value_sum()).
    ///
    /// \param confidence_override  when positive, replaces the configured
    ///        confidence for this one test.  Multi-testing uses this for
    ///        its family-wise (Bonferroni) correction.
    [[nodiscard]] BehaviorTestResult test(const stats::EmpiricalDistribution& counts,
                                          double confidence_override = 0.0) const;

    [[nodiscard]] const BehaviorTestConfig& config() const noexcept { return config_; }
    [[nodiscard]] const std::shared_ptr<stats::Calibrator>& calibrator() const noexcept {
        return calibrator_;
    }

    /// The reference-model cache this tester resolves against (null when
    /// config().use_reference_cache is false).
    [[nodiscard]] stats::ReferenceModelCache* reference_cache() const noexcept {
        return reference_cache_;
    }

private:
    BehaviorTestConfig config_;
    std::shared_ptr<stats::Calibrator> calibrator_;

    /// Resolved once in the constructor: the injected instance, the
    /// process-wide cache, or null (disabled).  When the config carries an
    /// injected instance, config_ keeps it alive.
    stats::ReferenceModelCache* reference_cache_ = nullptr;
};

/// Build a calibrator matching a test config (confidence, replications,
/// distance kind, worker threads).
[[nodiscard]] std::shared_ptr<stats::Calibrator> make_calibrator(
    const BehaviorTestConfig& config);

/// Warm-start helper: precalibrate every key a screening deployment with
/// this window size can hit — window counts on the calibrator's geometric
/// grid from 1 up to min(max_windows, windows_cap), p̂ buckets covering
/// [p_lo, p_hi].  Fans the grid across the calibrator's worker pool;
/// compose with Calibrator::save_cache / load_cache to move the cost
/// offline entirely.  Returns the number of cold keys computed.
std::size_t warm_calibration(stats::Calibrator& calibrator, std::uint32_t window_size,
                             std::size_t max_windows, double p_lo, double p_hi);

}  // namespace hpr::core

#endif  // HPR_CORE_BEHAVIOR_TEST_H
