#ifndef HPR_CORE_SCRATCH_H
#define HPR_CORE_SCRATCH_H

/// \file scratch.h
/// Per-thread reusable buffers for the assessment hot path.
///
/// Screening reduces a history to window counts over the small support
/// {0..m}; allocating that histogram per suffix ladder (and per raw
/// sequence) was the last allocation on the phase-1 path.  Each thread
/// instead owns one AssessmentScratch whose slots are reset (not
/// reallocated) on reuse, so steady-state screening never touches the
/// allocator.  serve::BatchAssessor workers get this for free: a pool
/// thread's arena persists across every server it assesses.
///
/// Ownership rules (who may reset which slot):
///
///  * `ladder_counts` belongs to the outermost suffix-ladder loop on the
///    calling thread — MultiTest::test_incremental or
///    OnlineScreener::evaluate.  Those loops hand the slot to
///    BehaviorTest::test(counts, confidence) as a borrowed const
///    reference; the single test never resets or writes any slot a
///    ladder may own.
///  * `window_counts` belongs to BehaviorTest's raw-sequence entry points
///    (test(span<Feedback>), test(span<uint8_t>)), which are never
///    reached from inside a ladder loop.
///
/// The slots are deliberately distinct so the two owners can coexist on
/// one call stack (a ladder stage calling the single test) without
/// clobbering each other.

#include "stats/empirical.h"

namespace hpr::core {

/// One thread's reusable assessment buffers.
struct AssessmentScratch {
    /// Suffix-ladder window-count histogram (MultiTest / OnlineScreener).
    stats::EmpiricalDistribution ladder_counts{0};

    /// Raw-sequence window-count histogram (BehaviorTest span entries).
    stats::EmpiricalDistribution window_counts{0};
};

/// The calling thread's scratch arena.
[[nodiscard]] AssessmentScratch& assessment_scratch() noexcept;

}  // namespace hpr::core

#endif  // HPR_CORE_SCRATCH_H
