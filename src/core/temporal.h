#ifndef HPR_CORE_TEMPORAL_H
#define HPR_CORE_TEMPORAL_H

/// \file temporal.h
/// Temporal categorizers for category-partitioned testing.
///
/// Paper §3.1: "The statistical model can also be temporal.  We may have
/// different models for weekdays and weekends, or for the time 9am to 5pm
/// and for other time intervals."  These helpers build Categorizer
/// functions (core/category.h) from a timestamp interpretation, so a
/// deployment can screen, say, business-hours service separately from
/// night-shift service without writing the bucketing by hand.
///
/// Timestamps are interpreted as seconds since an epoch that starts at
/// 00:00 on a Monday (the library never assumes wall-clock time anywhere
/// else, so the deployment chooses the epoch).

#include <cstdint>
#include <string>

#include "core/category.h"
#include "repsys/types.h"

namespace hpr::core {

/// Seconds per day / week under the library's timestamp convention.
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerDay = 24 * kSecondsPerHour;
inline constexpr std::int64_t kSecondsPerWeek = 7 * kSecondsPerDay;

/// Hour-of-day (0..23) of a timestamp.
[[nodiscard]] int hour_of_day(repsys::Timestamp time) noexcept;

/// Day-of-week (0 = Monday .. 6 = Sunday) of a timestamp.
[[nodiscard]] int day_of_week(repsys::Timestamp time) noexcept;

/// Categorizer: "weekday" vs "weekend".
[[nodiscard]] Categorizer weekday_weekend_categorizer();

/// Categorizer: "business" for [open_hour, close_hour) on weekdays,
/// "off-hours" otherwise.
/// \throws std::invalid_argument unless 0 <= open < close <= 24.
[[nodiscard]] Categorizer business_hours_categorizer(int open_hour = 9,
                                                     int close_hour = 17);

/// Categorizer: fixed-length time slices ("epoch-0", "epoch-1", ...), for
/// screening service quality per deployment period.
/// \throws std::invalid_argument if slice_seconds is not positive.
[[nodiscard]] Categorizer time_slice_categorizer(std::int64_t slice_seconds);

}  // namespace hpr::core

#endif  // HPR_CORE_TEMPORAL_H
