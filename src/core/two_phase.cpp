#include "core/two_phase.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace hpr::core {

namespace {

/// Serving-path metrics, shared by every assessor in the process.
struct AssessMetrics {
    obs::Counter& total;
    obs::Counter& suspicious;
    obs::Counter& assessed;
    obs::Counter& insufficient;
    obs::Histogram& phase1_seconds;
    obs::Histogram& phase2_seconds;
};

AssessMetrics& assess_metrics() {
    auto& registry = obs::default_registry();
    static AssessMetrics metrics{
        registry.counter("hpr_assessments_total", "Two-phase assessments served"),
        registry.counter("hpr_assessments_suspicious_total",
                         "Assessments that ended with verdict=suspicious"),
        registry.counter("hpr_assessments_assessed_total",
                         "Assessments that ended with verdict=assessed"),
        registry.counter("hpr_assessments_insufficient_total",
                         "Assessments that ended with verdict=insufficient-history"),
        registry.histogram("hpr_assess_phase1_seconds",
                           "Phase-1 screening latency (behavior + runs tests)"),
        registry.histogram("hpr_assess_phase2_seconds",
                           "Phase-2 trust-function latency"),
    };
    return metrics;
}

void count_verdict(Verdict verdict) {
    switch (verdict) {
        case Verdict::kSuspicious: assess_metrics().suspicious.increment(); break;
        case Verdict::kAssessed: assess_metrics().assessed.increment(); break;
        case Verdict::kInsufficientHistory:
            assess_metrics().insufficient.increment();
            break;
    }
}

/// Trace evidence for one behavior-test evaluation.
obs::StageEvidence to_evidence(const BehaviorTestResult& result,
                               std::size_t suffix_length) {
    obs::StageEvidence evidence;
    evidence.suffix_length = suffix_length;
    evidence.windows = result.windows;
    evidence.p_hat = result.p_hat;
    evidence.distance = result.distance;
    evidence.epsilon = result.threshold;
    evidence.sufficient = result.sufficient;
    evidence.passed = result.passed;
    return evidence;
}

/// Fill the trace record from a finished assessment (only sampled
/// assessments reach here, so the extra field copies are off the common
/// path).
void finalize_trace(obs::DecisionRecord& record, const Assessment& assessment) {
    record.verdict = to_string(assessment.verdict);
    // The record-level p̂ comes from the longest suffix the ladder actually
    // evaluated rather than a separate full-history pass: rescanning a
    // 20k-transaction history just for the trace costs more than the rest
    // of the instrumentation combined.
    if (!record.stages.empty()) record.p_hat = record.stages.back().p_hat;
    record.trust = assessment.trust;
    if (assessment.screening.sufficient) {
        record.min_margin = assessment.screening.min_margin;
    }
    if (assessment.screening.failure) {
        record.failed =
            to_evidence(*assessment.screening.failure,
                        assessment.screening.failed_suffix_length.value_or(
                            assessment.screening.failure->transactions_used));
    }
    if (assessment.runs) {
        record.runs.evaluated = true;
        record.runs.passed = assessment.runs->passed;
        record.runs.z = assessment.runs->z;
        record.runs.z_threshold = assessment.runs->z_threshold;
    }
}

}  // namespace

const char* to_string(ScreeningMode mode) noexcept {
    switch (mode) {
        case ScreeningMode::kNone: return "none";
        case ScreeningMode::kSingle: return "single";
        case ScreeningMode::kMulti: return "multi";
    }
    return "unknown";
}

const char* to_string(Verdict verdict) noexcept {
    switch (verdict) {
        case Verdict::kSuspicious: return "suspicious";
        case Verdict::kAssessed: return "assessed";
        case Verdict::kInsufficientHistory: return "insufficient-history";
    }
    return "unknown";
}

TwoPhaseAssessor::TwoPhaseAssessor(TwoPhaseConfig config,
                                   std::shared_ptr<const repsys::TrustFunction> trust,
                                   std::shared_ptr<stats::Calibrator> calibrator)
    : config_(config),
      trust_(std::move(trust)),
      multi_(config.test, calibrator ? calibrator : make_calibrator(config.test.base)),
      collusion_(config.test, multi_.single().calibrator()),
      runs_(config.runs) {
    if (!trust_) {
        throw std::invalid_argument("TwoPhaseAssessor: trust function must not be null");
    }
}

const std::shared_ptr<stats::Calibrator>& TwoPhaseAssessor::calibrator() const noexcept {
    return multi_.single().calibrator();
}

MultiTestResult TwoPhaseAssessor::screen(
    std::span<const repsys::Feedback> feedbacks) const {
    switch (config_.mode) {
        case ScreeningMode::kNone: {
            MultiTestResult trivial;
            trivial.passed = true;
            trivial.sufficient = false;
            return trivial;
        }
        case ScreeningMode::kSingle: {
            const BehaviorTestResult single =
                config_.collusion_resilient
                    ? collusion_.test_single(feedbacks)
                    : multi_.single().test(feedbacks);
            if (auto* trace = obs::TraceContext::current()) {
                trace->record()->stages.push_back(
                    to_evidence(single, feedbacks.size()));
            }
            MultiTestResult wrapped;
            wrapped.passed = single.passed;
            wrapped.sufficient = single.sufficient;
            wrapped.stages_run = single.sufficient ? 1 : 0;
            wrapped.min_margin = single.sufficient ? single.margin() : 0.0;
            if (!single.passed) {
                wrapped.failed_suffix_length = single.transactions_used;
                wrapped.failure = single;
            }
            if (config_.test.collect_details && single.sufficient) {
                wrapped.details.push_back(single);
            }
            return wrapped;
        }
        case ScreeningMode::kMulti:
            return config_.collusion_resilient ? collusion_.test_multi(feedbacks)
                                               : multi_.test(feedbacks);
    }
    throw std::logic_error("TwoPhaseAssessor::screen: unknown screening mode");
}

Assessment TwoPhaseAssessor::assess(std::span<const repsys::Feedback> feedbacks) const {
    AssessMetrics& metrics = assess_metrics();
    metrics.total.increment();
    obs::TraceContext trace{obs::default_tracer(),
                            feedbacks.empty() ? 0 : feedbacks.front().server,
                            "two_phase"};
    if (obs::DecisionRecord* record = trace.record()) {
        record->mode = to_string(config_.mode);
        record->collusion_resilient = config_.collusion_resilient;
        record->window_size = config_.test.base.window_size;
        record->history_length = feedbacks.size();
    }
    Assessment assessment;
    {
        obs::ScopedTimer phase1{metrics.phase1_seconds};
        {
            obs::TraceSpan span{"phase1/screen"};
            assessment.screening = screen(feedbacks);
        }
        if (assessment.screening.passed && config_.require_runs_test &&
            config_.mode != ScreeningMode::kNone) {
            obs::TraceSpan span{"phase1/runs"};
            if (config_.collusion_resilient) {
                const auto reordered = reorder_by_issuer(feedbacks);
                assessment.runs =
                    runs_.test(std::span<const repsys::Feedback>{reordered});
            } else {
                assessment.runs = runs_.test(feedbacks);
            }
        }
    }
    if (!assessment.screening.passed || (assessment.runs && !assessment.runs->passed)) {
        // Fig. 2: "Alert ('Destination peer is suspicious'); Abort".
        assessment.verdict = Verdict::kSuspicious;
        count_verdict(assessment.verdict);
        if (obs::DecisionRecord* record = trace.record()) {
            finalize_trace(*record, assessment);
        }
        return assessment;
    }
    {
        obs::ScopedTimer phase2{metrics.phase2_seconds};
        obs::TraceSpan span{"phase2/trust"};
        assessment.trust = trust_->evaluate(feedbacks);
    }
    if (config_.mode == ScreeningMode::kNone || assessment.screening.sufficient) {
        assessment.verdict = Verdict::kAssessed;
    } else {
        assessment.verdict = Verdict::kInsufficientHistory;
    }
    count_verdict(assessment.verdict);
    if (obs::DecisionRecord* record = trace.record()) {
        finalize_trace(*record, assessment);
    }
    return assessment;
}

Assessment TwoPhaseAssessor::assess(const repsys::TransactionHistory& history) const {
    return assess(history.view());
}

}  // namespace hpr::core
