#ifndef HPR_CORE_MULTI_TEST_H
#define HPR_CORE_MULTI_TEST_H

/// \file multi_test.h
/// Multi-testing of server behavior (paper §3.3): the single behavior
/// test is applied to the whole history and to the most recent
/// n - step, n - 2*step, ... transactions, so that both long-term and
/// short-term behavior must look honest.  Failing any suffix marks the
/// server suspicious.
///
/// Two implementations are provided:
///  * test()        — the optimized O(n) algorithm of §5.5: window
///    statistics are accumulated incrementally from the newest suffix to
///    the full history, so each additional suffix costs O(step + m).
///  * test_naive()  — the direct O(n²/step) algorithm (each suffix is
///    re-windowed from scratch).  Kept as the reference implementation:
///    the test suite checks both agree bit-for-bit, and the Fig. 9 bench
///    uses it as the ablation baseline.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/behavior_test.h"
#include "core/config.h"
#include "repsys/types.h"

namespace hpr::core {

/// Outcome of a multi-test.
struct MultiTestResult {
    bool passed = true;           ///< every evaluated suffix passed
    bool sufficient = false;      ///< at least one suffix was testable
    std::size_t stages_run = 0;   ///< number of suffix tests evaluated

    /// Length (in transactions) of the shortest failing suffix, if any.
    std::optional<std::size_t> failed_suffix_length;

    /// Result of the failing stage, if any.
    std::optional<BehaviorTestResult> failure;

    /// Per-stage results, shortest suffix first (only when
    /// MultiTestConfig::collect_details is set).
    std::vector<BehaviorTestResult> details;

    /// Smallest ε - d margin across evaluated stages (how close the
    /// history came to rejection).
    double min_margin = 0.0;
};

/// Reusable multi-tester sharing one calibration cache.
class MultiTest {
public:
    explicit MultiTest(MultiTestConfig config = {},
                       std::shared_ptr<stats::Calibrator> calibrator = nullptr);

    /// Optimized O(n) multi-test over a feedback sequence (oldest first).
    [[nodiscard]] MultiTestResult test(std::span<const repsys::Feedback> feedbacks) const;

    /// Optimized O(n) multi-test over a raw outcome sequence.
    [[nodiscard]] MultiTestResult test(std::span<const std::uint8_t> outcomes) const;

    /// Reference O(n²/step) implementation (identical verdicts).
    [[nodiscard]] MultiTestResult test_naive(
        std::span<const repsys::Feedback> feedbacks) const;
    [[nodiscard]] MultiTestResult test_naive(
        std::span<const std::uint8_t> outcomes) const;

    [[nodiscard]] const MultiTestConfig& config() const noexcept { return config_; }
    [[nodiscard]] const BehaviorTest& single() const noexcept { return single_; }

private:
    template <typename Sequence, typename IsGood>
    [[nodiscard]] MultiTestResult test_incremental(const Sequence& seq,
                                                   IsGood is_good) const;

    template <typename Subspan>
    [[nodiscard]] MultiTestResult test_naive_impl(std::size_t n, Subspan suffix) const;

    MultiTestConfig config_;
    BehaviorTest single_;
};

}  // namespace hpr::core

#endif  // HPR_CORE_MULTI_TEST_H
