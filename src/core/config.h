#ifndef HPR_CORE_CONFIG_H
#define HPR_CORE_CONFIG_H

/// \file config.h
/// Tunable parameters of the behavior-testing algorithms (paper §3).

#include <cstddef>
#include <cstdint>
#include <memory>

#include "stats/distance.h"

namespace hpr::stats {
class ReferenceModelCache;
}  // namespace hpr::stats

namespace hpr::core {

/// Parameters of the single behavior test (paper §3.2).
struct BehaviorTestConfig {
    /// Transactions per window (m).  The paper's experiments use 10.
    std::uint32_t window_size = 10;

    /// Confidence level used to calibrate the distance threshold ε
    /// (the paper selects ε at the 95% confidence interval).
    double confidence = 0.95;

    /// Monte-Carlo replications per calibration key.
    std::size_t replications = 1000;

    /// Minimum number of complete windows required before the test is
    /// considered statistically meaningful.  Histories shorter than
    /// min_windows * window_size cannot be screened (paper §7 discusses
    /// why short histories are inherently undecidable).
    std::size_t min_windows = 3;

    /// Distance functional; the paper uses the L1 norm.
    stats::DistanceKind distance = stats::DistanceKind::kL1;

    /// Worker threads for Monte-Carlo calibration (0 = one per hardware
    /// thread).  Purely a speed knob: calibrated thresholds are
    /// bit-identical at any thread count.
    std::size_t calibration_threads = 0;

    /// Reuse Binomial reference models through the shared
    /// stats::ReferenceModelCache instead of rebuilding the pmf table on
    /// every test.  Purely a speed knob: the cache keys on the *exact*
    /// rational p̂, so cached results are bit-identical to fresh
    /// construction (verdicts, distances and margins cannot change).
    bool use_reference_cache = true;

    /// Cache instance to use; null means the process-wide cache
    /// (stats::ReferenceModelCache::process_wide()).  Benches and tests
    /// inject a private instance to control capacity and observe stats.
    std::shared_ptr<stats::ReferenceModelCache> reference_cache;
};

/// Parameters of multi-testing (paper §3.3): the single test is repeated
/// over the most recent (n - j*step) transactions for j = 0, 1, 2, ...
/// until fewer than min_windows windows remain.
struct MultiTestConfig {
    BehaviorTestConfig base{};

    /// Suffix shrink step in transactions (the constant k of §3.3).
    /// 0 means "2 * window_size".  Values are rounded up to a multiple of
    /// the window size so that window boundaries align across suffixes —
    /// the alignment that enables the O(n) incremental algorithm of §5.5.
    std::size_t step = 0;

    /// Stop at the first failing suffix (the screening use case) instead
    /// of evaluating every suffix (the diagnostics use case).
    bool stop_on_failure = true;

    /// Record a per-suffix BehaviorTestResult in the MultiTestResult.
    bool collect_details = false;

    /// Family-wise false-alarm control.  Multi-testing runs many
    /// (dependent) suffix tests, so a naive per-stage confidence of 95%
    /// inflates the chance of flagging an honest long history.  With this
    /// flag each stage runs at confidence 1 - (1 - confidence)/stages
    /// (Bonferroni), keeping the family-wise false-positive rate near the
    /// configured level.  Off by default — the paper evaluates the
    /// uncorrected scheme.
    bool bonferroni = false;

    /// Effective step after applying defaults and window alignment.
    [[nodiscard]] std::size_t effective_step() const noexcept {
        const std::size_t m = base.window_size;
        std::size_t s = step == 0 ? 2 * m : step;
        const std::size_t rem = s % m;
        if (rem != 0) s += m - rem;
        return s;
    }
};

}  // namespace hpr::core

#endif  // HPR_CORE_CONFIG_H
