// P2P file-sharing scenario (the paper's second motivating setting): a
// downloader must pick one of several file providers, some of which game
// the reputation system.  Demonstrates
//   * plugging different phase-2 trust functions into the same screening,
//   * multinomial behavior testing for {positive, neutral, negative}
//     download ratings (paper §3.1 extension), and
//   * how the strategic attacker of §5.1 fares against each defense.
//
//   build/examples/p2p_filesharing

#include <cstdio>
#include <memory>
#include <vector>

#include "hpr.h"

using namespace hpr;

namespace {

void compare_trust_functions(const repsys::TransactionHistory& history) {
    std::printf("one history, four phase-2 trust functions (screening identical):\n");
    const auto calibrator = core::make_calibrator({});
    for (const char* spec : {"average", "weighted:0.5", "beta", "decay:0.98"}) {
        core::TwoPhaseConfig config;
        config.mode = core::ScreeningMode::kMulti;
        config.test.bonferroni = true;  // family-wise 95% across the suffixes
        const core::TwoPhaseAssessor assessor{
            config,
            std::shared_ptr<const repsys::TrustFunction>{
                repsys::make_trust_function(spec)},
            calibrator};
        const auto assessment = assessor.assess(history);
        std::printf("  %-14s -> %-12s trust=%s\n", spec,
                    core::to_string(assessment.verdict),
                    assessment.trust ? std::to_string(*assessment.trust).c_str()
                                     : "(withheld)");
    }
}

void multinomial_ratings_demo() {
    std::printf("\nmultinomial ratings (positive/neutral/negative downloads):\n");
    const core::MultinomialBehaviorTest tester;
    stats::Rng rng{512};

    // A provider whose downloads succeed 80%, stall 15%, fail 5% — honest.
    repsys::TransactionHistory steady;
    for (int i = 0; i < 600; ++i) {
        const double u = rng.uniform();
        steady.append(1, static_cast<repsys::EntityId>(10 + i % 40),
                      u < 0.80   ? repsys::Rating::kPositive
                      : u < 0.95 ? repsys::Rating::kNeutral
                                 : repsys::Rating::kNegative);
    }
    const auto steady_result = tester.test(steady.view());
    std::printf("  steady provider:   %s  (p̂ = %.2f/%.2f/%.2f pos/neu/neg)\n",
                steady_result.passed ? "consistent" : "SUSPICIOUS",
                steady_result.p_hat[1], steady_result.p_hat[2],
                steady_result.p_hat[0]);

    // A provider that silently degrades to stalling most downloads —
    // binary feedback ({good, bad}) would blur this; the neutral channel
    // exposes it.
    repsys::TransactionHistory degrading;
    for (int i = 0; i < 600; ++i) {
        const bool late = i >= 400;
        const double u = rng.uniform();
        degrading.append(1, static_cast<repsys::EntityId>(10 + i % 40),
                         u < (late ? 0.20 : 0.85) ? repsys::Rating::kPositive
                         : u < 0.97               ? repsys::Rating::kNeutral
                                                  : repsys::Rating::kNegative);
    }
    const auto degrading_result = tester.test(degrading.view());
    std::printf("  degrading provider: %s\n",
                degrading_result.passed ? "consistent" : "SUSPICIOUS");
}

void strategic_attacker_demo() {
    std::printf("\nstrategic attacker (knows the defense, wants 20 bad uploads, "
                "prep 600 @ 0.95):\n");
    const auto calibrator = core::make_calibrator({});
    struct Row {
        const char* label;
        core::ScreeningMode mode;
        const char* trust;
    };
    const std::vector<Row> rows{
        {"average only", core::ScreeningMode::kNone, "average"},
        {"scheme1 + average", core::ScreeningMode::kSingle, "average"},
        {"scheme2 + average", core::ScreeningMode::kMulti, "average"},
        {"scheme2 + weighted", core::ScreeningMode::kMulti, "weighted:0.5"},
    };
    for (const Row& row : rows) {
        sim::AttackCostConfig config;
        config.prep_size = 600;
        config.screening = row.mode;
        config.trust_spec = row.trust;
        config.seed = 313;
        config.max_attack_steps = 20000;
        const auto series = sim::run_attack_cost_trials(config, 9, calibrator);
        std::printf("  %-20s median cost = %4.0f good uploads per 20 attacks%s\n",
                    row.label, series.median_cost(),
                    series.unreached_runs > 0 ? "  (some runs locked out!)" : "");
    }
}

}  // namespace

int main() {
    stats::Rng rng{640};
    const auto provider = sim::honest_history(700, 0.91, rng);
    compare_trust_functions(provider);
    multinomial_ratings_demo();
    strategic_attacker_demo();
    return 0;
}
