// hpr_calibrate — precompute and persist the Monte-Carlo calibration
// cache so production processes start with warm thresholds.
//
//   build/examples/hpr_calibrate [output-path] [threads]
//
// Calibrates the default configuration (window 10, L1, 1000 replications)
// over the window-count grid up to the cap and the p̂ buckets a
// high-reputation deployment actually hits (p in [0.5, 1.0]), fanning the
// grid across the calibrator's worker pool, then writes the cache.  A
// server loads it with `Calibrator::load_cache` and never pays the
// Monte-Carlo warm-up on the request path.  Thresholds are bit-identical
// at any thread count — parallelism only moves the wall clock.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "hpr.h"

using namespace hpr;

int main(int argc, char** argv) {
    const std::string path =
        argc > 1 ? argv[1]
                 : (std::filesystem::temp_directory_path() / "hpr_calibration.cache")
                       .string();

    stats::CalibrationConfig cal_config;
    if (argc > 2) cal_config.threads = std::strtoul(argv[2], nullptr, 10);
    stats::Calibrator calibrator{cal_config};
    const auto& config = calibrator.config();
    std::printf(
        "calibrating: kind=%s replications=%zu p-grid=1/%u window-cap=%zu "
        "threads=%zu\n",
        stats::to_string(config.kind), config.replications, config.p_grid,
        config.windows_cap, calibrator.threads());

    const auto start = std::chrono::steady_clock::now();
    // The full geometric window grid and the p̂ half deployments care
    // about, fanned across the worker pool in one call.
    const std::size_t computed = core::warm_calibration(
        calibrator, 10, config.windows_cap, 0.5, 1.0);
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    std::printf("calibrated %zu keys (%zu Monte-Carlo runs) in %.1fs\n",
                calibrator.cache_size(), computed, elapsed);

    calibrator.save_cache(path);
    std::printf("cache written to %s (%ju bytes)\n", path.c_str(),
                static_cast<std::uintmax_t>(std::filesystem::file_size(path)));

    // Prove the round trip: a fresh calibrator loads it and answers with
    // zero Monte-Carlo work.
    stats::Calibrator restored{cal_config};
    restored.load_cache(path);
    const auto warm_start = std::chrono::steady_clock::now();
    (void)restored.threshold(40, 10, 0.9);
    (void)restored.threshold(400, 10, 0.95);
    const auto warm = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - warm_start)
                          .count();
    std::printf("restored calibrator answered 2 queries in %.0f microseconds "
                "(cache size %zu, Monte-Carlo runs %zu)\n",
                warm, restored.cache_size(), restored.compute_count());
    return 0;
}
