// hpr_calibrate — precompute and persist the Monte-Carlo calibration
// cache so production processes start with warm thresholds.
//
//   build/examples/hpr_calibrate [output-path]
//
// Calibrates the default configuration (window 10, L1, 1000 replications)
// over the window-count grid up to the cap and the p̂ buckets a
// high-reputation deployment actually hits (p in [0.5, 1.0]), then writes
// the cache.  A server loads it with `Calibrator::load_cache` and never
// pays the Monte-Carlo warm-up on the request path.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "hpr.h"

using namespace hpr;

int main(int argc, char** argv) {
    const std::string path =
        argc > 1 ? argv[1]
                 : (std::filesystem::temp_directory_path() / "hpr_calibration.cache")
                       .string();

    stats::Calibrator calibrator;
    const auto& config = calibrator.config();
    std::printf("calibrating: kind=%s replications=%zu p-grid=1/%u window-cap=%zu\n",
                stats::to_string(config.kind), config.replications, config.p_grid,
                config.windows_cap);

    const auto start = std::chrono::steady_clock::now();
    std::size_t queries = 0;
    // Window counts on the calibrator's own geometric grid.
    for (std::size_t k = 3; k <= config.windows_cap;
         k = std::max(k + 1, calibrator.effective_windows(k + k / 4 + 1))) {
        // p̂ buckets every 1/64 across the half deployments care about.
        for (int b = 32; b <= 64; ++b) {
            (void)calibrator.threshold(k, 10, static_cast<double>(b) / 64.0);
            ++queries;
        }
    }
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    std::printf("calibrated %zu keys (%zu queries) in %.1fs\n",
                calibrator.cache_size(), queries, elapsed);

    calibrator.save_cache(path);
    std::printf("cache written to %s (%ju bytes)\n", path.c_str(),
                static_cast<std::uintmax_t>(std::filesystem::file_size(path)));

    // Prove the round trip: a fresh calibrator loads it and answers with
    // zero Monte-Carlo work.
    stats::Calibrator restored;
    restored.load_cache(path);
    const auto warm_start = std::chrono::steady_clock::now();
    (void)restored.threshold(40, 10, 0.9);
    (void)restored.threshold(400, 10, 0.95);
    const auto warm = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - warm_start)
                          .count();
    std::printf("restored calibrator answered 2 queries in %.0f microseconds "
                "(cache size %zu)\n",
                warm, restored.cache_size());
    return 0;
}
