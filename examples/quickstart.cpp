// Quickstart: screen a server's transaction history with the two-phase
// assessor (paper Fig. 1/Fig. 2) and read the verdict.
//
//   build/examples/quickstart
//
// Walks through the three cases every deployment hits:
//   1. an honest server           -> screened, trust value returned;
//   2. a hibernating attacker     -> flagged suspicious, no trust value;
//   3. a newcomer (short history) -> unscreenable, trust value returned
//      with an explicit "insufficient history" marker.

#include <cstdio>

#include "hpr.h"

using namespace hpr;

namespace {

void show(const char* label, const core::Assessment& assessment) {
    std::printf("%-24s verdict=%-22s", label, core::to_string(assessment.verdict));
    if (assessment.trust) {
        std::printf(" trust=%.3f", *assessment.trust);
    } else {
        std::printf(" trust=(withheld)");
    }
    if (assessment.screening.sufficient) {
        std::printf("  [screened %zu suffix(es), min margin %+.3f]",
                     assessment.screening.stages_run, assessment.screening.min_margin);
    }
    std::printf("\n");
}

}  // namespace

int main() {
    // One assessor, reusable for any number of servers.  Phase 1 is the
    // paper's multi-testing (Scheme 2) over windows of 10 transactions at
    // 95% confidence; phase 2 is the plain average trust function.
    core::TwoPhaseConfig config;
    config.mode = core::ScreeningMode::kMulti;
    const core::TwoPhaseAssessor assessor{
        config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("average")}};

    stats::Rng rng{2024};

    // 1. Honest player: outcomes are iid Bernoulli(0.93) (paper §3.1).
    const auto honest = sim::honest_history(500, 0.93, rng);
    show("honest server:", assessor.assess(honest));

    // 2. Hibernating attacker: 500 honest-looking transactions, then a
    //    burst of 25 bad ones (paper §3).  The plain average trust value
    //    would still be 0.86 — screening refuses to compute it.
    const auto attacker = sim::hibernating_history(500, 25, 0.95, rng);
    show("hibernating attacker:", assessor.assess(attacker));

    // 3. Newcomer with 15 transactions: too short to screen (paper §7
    //    discusses why newcomers are inherently undecidable).
    const auto newcomer = sim::honest_history(15, 0.9, rng);
    show("newcomer:", assessor.assess(newcomer));

    // A client with trust threshold 0.9 would transact only with servers
    // that pass BOTH phases:
    std::printf("\nwould transact (threshold 0.9)?  honest=%s  attacker=%s\n",
                assessor.accept(honest, 0.9) ? "yes" : "no",
                assessor.accept(attacker, 0.9) ? "yes" : "no");
    return 0;
}
