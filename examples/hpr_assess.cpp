// hpr_assess — command-line two-phase trust assessment of a CSV feedback
// log (the format of repsys/io.h: `time,server,client,rating`).
//
//   build/examples/hpr_assess [options] [feedback.csv]
//
// Options:
//   --trust SPEC       phase-2 trust function: average | average:<prior> |
//                      weighted[:<lambda>] | beta | decay[:<gamma>]
//                      (default: average)
//   --mode MODE        screening: none | single | multi   (default: multi)
//   --collusion        screen the issuer-reordered sequence (paper §4)
//   --adaptive         additionally run drift-tolerant segmented testing
//   --bonferroni       family-wise correction across suffix stages
//   --window N         transactions per window              (default: 10)
//   --confidence C     calibration confidence               (default: 0.95)
//   --threshold T      acceptance threshold to report against (default: 0.9)
//
// With no CSV argument a demo log is generated and assessed, so the tool
// is runnable out of the box.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "hpr.h"

using namespace hpr;

namespace {

struct Options {
    std::string csv;
    std::string trust = "average";
    core::ScreeningMode mode = core::ScreeningMode::kMulti;
    bool collusion = false;
    bool adaptive = false;
    bool bonferroni = false;
    std::uint32_t window = 10;
    double confidence = 0.95;
    double threshold = 0.9;
};

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
    if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
    std::fprintf(stderr,
                 "usage: %s [--trust SPEC] [--mode none|single|multi] "
                 "[--collusion] [--adaptive] [--bonferroni]\n"
                 "          [--window N] [--confidence C] [--threshold T] "
                 "[feedback.csv]\n",
                 argv0);
    std::exit(2);
}

Options parse(int argc, char** argv) {
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) usage(argv[0], ("missing value for " + arg).c_str());
            return argv[++i];
        };
        if (arg == "--trust") {
            options.trust = next();
        } else if (arg == "--mode") {
            const std::string mode = next();
            if (mode == "none") {
                options.mode = core::ScreeningMode::kNone;
            } else if (mode == "single") {
                options.mode = core::ScreeningMode::kSingle;
            } else if (mode == "multi") {
                options.mode = core::ScreeningMode::kMulti;
            } else {
                usage(argv[0], ("unknown mode '" + mode + "'").c_str());
            }
        } else if (arg == "--collusion") {
            options.collusion = true;
        } else if (arg == "--adaptive") {
            options.adaptive = true;
        } else if (arg == "--bonferroni") {
            options.bonferroni = true;
        } else if (arg == "--window") {
            options.window = static_cast<std::uint32_t>(std::stoul(next()));
        } else if (arg == "--confidence") {
            options.confidence = std::stod(next());
        } else if (arg == "--threshold") {
            options.threshold = std::stod(next());
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0], ("unknown option '" + arg + "'").c_str());
        } else {
            options.csv = arg;
        }
    }
    return options;
}

std::string demo_log() {
    stats::Rng rng{2718};
    const auto history = sim::hibernating_history(500, 22, 0.95, rng);
    const auto path =
        (std::filesystem::temp_directory_path() / "hpr_assess_demo.csv").string();
    repsys::save_csv(path, history);
    std::printf("(no CSV given; assessing a generated hibernating-attack demo "
                "log: %s)\n\n",
                path.c_str());
    return path;
}

}  // namespace

int main(int argc, char** argv) {
    Options options = parse(argc, argv);
    if (options.csv.empty()) options.csv = demo_log();

    repsys::TransactionHistory history;
    try {
        history = repsys::load_csv(options.csv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "cannot load '%s': %s\n", options.csv.c_str(), e.what());
        return 1;
    }

    core::TwoPhaseConfig config;
    config.mode = options.mode;
    config.collusion_resilient = options.collusion;
    config.test.base.window_size = options.window;
    config.test.base.confidence = options.confidence;
    config.test.bonferroni = options.bonferroni;
    config.test.collect_details = true;
    config.test.stop_on_failure = false;

    std::unique_ptr<const repsys::TrustFunction> trust;
    try {
        trust = repsys::make_trust_function(options.trust);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    const core::TwoPhaseAssessor assessor{
        config, std::shared_ptr<const repsys::TrustFunction>{std::move(trust)}};

    std::printf("history: %zu feedbacks, %zu distinct clients, good ratio %.4f\n",
                history.size(), history.distinct_clients(), history.good_ratio());
    const core::Assessment assessment = assessor.assess(history);
    std::printf("screening (%s%s): %s",
                core::to_string(options.mode),
                options.collusion ? ", issuer-reordered" : "",
                assessment.screening.passed ? "PASS" : "FAIL");
    if (assessment.screening.sufficient) {
        std::printf("  [%zu stage(s), min margin %+.4f]",
                    assessment.screening.stages_run, assessment.screening.min_margin);
    } else if (options.mode != core::ScreeningMode::kNone) {
        std::printf("  [history too short to screen]");
    }
    std::printf("\n");
    if (assessment.screening.failure) {
        std::printf("  first failing suffix: %zu transactions (d=%.4f > eps=%.4f "
                    "at p̂=%.4f)\n",
                    assessment.screening.failed_suffix_length.value_or(0),
                    assessment.screening.failure->distance,
                    assessment.screening.failure->threshold,
                    assessment.screening.failure->p_hat);
    }
    std::printf("verdict: %s\n", core::to_string(assessment.verdict));
    if (assessment.trust) {
        std::printf("trust (%s): %.4f -> %s at threshold %.2f\n",
                    assessor.trust_function().name().c_str(), *assessment.trust,
                    *assessment.trust >= options.threshold ? "ACCEPT" : "REJECT",
                    options.threshold);
    } else {
        std::printf("trust: withheld (suspicious history)\n");
    }

    if (options.adaptive) {
        core::BehaviorTestConfig base = config.test.base;
        const core::AdaptiveBehaviorTest adaptive{base, {}};
        const auto result = adaptive.test(history.view());
        std::printf("\nadaptive (drift-tolerant) testing: %s, %zu regime(s)\n",
                    result.passed ? "PASS" : "FAIL", result.segments.size());
        for (std::size_t i = 0; i < result.segments.size(); ++i) {
            const auto& s = result.segments[i];
            std::printf("  regime %zu: windows [%zu, %zu) p=%.3f -> %s\n", i,
                        s.begin_window, s.end_window, s.p,
                        result.per_segment[i].passed ? "consistent" : "suspicious");
        }
    }
    return assessment.verdict == core::Verdict::kSuspicious ? 3 : 0;
}
