// Online-auction marketplace scenario (the setting the paper's
// introduction motivates): a population of sellers with different
// behaviors serves a stream of buyers, who pick sellers either with a
// plain trust function or with the paper's two-phase assessment.
//
//   build/examples/auction_marketplace
//
// Prints, for each defense, what every seller got away with and how many
// bad transactions buyers suffered overall — the end-to-end payoff of
// honest-player screening.

#include <cstdio>
#include <memory>

#include "hpr.h"

using namespace hpr;

namespace {

std::size_t run_market(core::ScreeningMode mode, bool print_report) {
    core::TwoPhaseConfig assess_config;
    assess_config.mode = mode;
    assess_config.test.bonferroni = true;  // keep honest sellers unflagged
    const auto assessor = std::make_shared<const core::TwoPhaseAssessor>(
        assess_config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("average")});

    sim::MarketConfig market_config;
    market_config.steps = 1500;
    market_config.trust_threshold = 0.85;
    market_config.bootstrap_per_server = 80;
    // 5% of buyers ignore reputation entirely: keeps flagged sellers'
    // histories evolving, so an honest seller tripped by screening noise
    // can clear itself with continued good service.
    market_config.exploration = 0.05;
    market_config.seed = 7777;

    sim::Marketplace market{market_config, assessor};
    market.add_server(std::make_unique<sim::HonestStrategy>(0.96));
    market.add_server(std::make_unique<sim::HonestStrategy>(0.92));
    market.add_server(std::make_unique<sim::HonestStrategy>(0.88));
    // Flips to pure cheating right after its bootstrap reputation is built.
    market.add_server(std::make_unique<sim::HibernatingStrategy>(80, 0.96));
    // Cheats twice per 20 transactions, forever.
    market.add_server(std::make_unique<sim::PeriodicStrategy>(20, 2));
    market.run();

    if (print_report) {
        std::printf("  %-26s %6s %10s %10s %12s %8s\n", "seller", "txs",
                    "bad-served", "veto:trust", "veto:screen", "trust");
        for (const auto& [id, report] : market.report()) {
            char trust_col[16];
            if (report.suspicious) {
                std::snprintf(trust_col, sizeof trust_col, "FLAGGED");
            } else {
                std::snprintf(trust_col, sizeof trust_col, "%.3f",
                              report.final_trust);
            }
            std::printf("  %-26s %6zu %10zu %10zu %12zu %8s\n",
                        report.strategy.c_str(), report.transactions,
                        report.bad_served, report.rejected_trust,
                        report.rejected_screen, trust_col);
        }
    }
    return market.total_bad_suffered();
}

}  // namespace

int main() {
    std::printf("=== plain trust function (no behavior testing) ===\n");
    const std::size_t bad_plain = run_market(core::ScreeningMode::kNone, true);

    std::printf("\n=== two-phase assessment (Scheme 2 multi-testing) ===\n");
    const std::size_t bad_screened = run_market(core::ScreeningMode::kMulti, true);

    std::printf("\nbad transactions suffered by buyers: %zu (plain)  vs  %zu "
                "(two-phase)\n",
                bad_plain, bad_screened);
    return 0;
}
