// Collusion forensics on a feedback log (paper §4): given a CSV feedback
// log (or a generated demo log), analyze a seller's history with and
// without the collusion-resilient re-ordering, show the issuer groups
// the re-ordering exposes, and break the history down by client category.
//
//   build/examples/collusion_forensics [feedback.csv]
//
// With no argument, a demo log of a colluder-boosted seller is generated
// to a temporary file first, so the example is self-contained.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "hpr.h"

using namespace hpr;

namespace {

std::string make_demo_log() {
    // A seller boosted by 5 colluders (clients 2..6): fake positives cover
    // an 8% cheat rate on ever-fresh victims (clients 500+).
    stats::Rng rng{99};
    repsys::TransactionHistory history;
    repsys::EntityId victim = 500;
    for (int i = 0; i < 600; ++i) {
        if (rng.bernoulli(0.08)) {
            history.append(1, victim++, repsys::Rating::kNegative);
        } else {
            history.append(1, static_cast<repsys::EntityId>(2 + i % 5),
                           repsys::Rating::kPositive);
        }
    }
    const auto path =
        (std::filesystem::temp_directory_path() / "hpr_demo_feedback.csv").string();
    repsys::save_csv(path, history);
    std::printf("(no CSV given; wrote demo log to %s)\n\n", path.c_str());
    return path;
}

void print_issuer_groups(const repsys::TransactionHistory& history) {
    std::map<repsys::EntityId, std::pair<std::size_t, std::size_t>> stats;  // id -> (txs, goods)
    for (const auto& f : history.feedbacks()) {
        auto& [txs, goods] = stats[f.client];
        ++txs;
        if (f.good()) ++goods;
    }
    std::vector<std::pair<repsys::EntityId, std::pair<std::size_t, std::size_t>>> rows{
        stats.begin(), stats.end()};
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return a.second.first > b.second.first;
    });
    std::printf("top feedback issuers (the collusion-resilient test orders these "
                "first):\n");
    std::printf("  %-10s %8s %8s %8s\n", "client", "txs", "good", "ratio");
    for (std::size_t i = 0; i < rows.size() && i < 8; ++i) {
        const auto& [client, counts] = rows[i];
        std::printf("  %-10u %8zu %8zu %8.2f\n", client, counts.first, counts.second,
                    static_cast<double>(counts.second) /
                        static_cast<double>(counts.first));
    }
    if (rows.size() > 8) {
        std::printf("  ... and %zu more issuers\n", rows.size() - 8);
    }
}

}  // namespace

int main(int argc, char** argv) {
    const std::string path = argc > 1 ? argv[1] : make_demo_log();
    repsys::TransactionHistory history;
    try {
        history = repsys::load_csv(path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "cannot load '%s': %s\n", path.c_str(), e.what());
        return 1;
    }
    std::printf("loaded %zu feedbacks, %zu distinct clients, good ratio %.3f, "
                "supporter base %zu\n\n",
                history.size(), history.distinct_clients(), history.good_ratio(),
                history.supporter_base());

    print_issuer_groups(history);

    // Screen the history three ways.
    const auto calibrator = core::make_calibrator({});
    const core::MultiTest chronological{{}, calibrator};
    const core::CollusionResilientTest resilient{{}, calibrator};

    const auto in_time_order = chronological.test(history.view());
    const auto reordered = resilient.test_multi(history.view());
    std::printf("\nchronological multi-test:        %s\n",
                in_time_order.passed ? "PASS (looks honest in time order)"
                                     : "FAIL (suspicious)");
    std::printf("collusion-resilient multi-test:  %s\n",
                reordered.passed ? "PASS" : "FAIL (suspicious)");
    if (!reordered.passed && reordered.failure) {
        std::printf("  -> first failing suffix: %zu feedbacks "
                    "(distance %.3f > threshold %.3f at p=%.3f)\n",
                    *reordered.failed_suffix_length, reordered.failure->distance,
                    reordered.failure->threshold, reordered.failure->p_hat);
    }

    // Category view (paper §4 end): split issuers into "regulars" (5+
    // feedbacks) vs "occasional" and test each population separately.
    std::map<repsys::EntityId, std::size_t> counts;
    for (const auto& f : history.feedbacks()) ++counts[f.client];
    const core::CategoryTest by_frequency{
        core::MultiTestConfig{},
        [counts](const repsys::Feedback& f) -> std::string {
            return counts.at(f.client) >= 5 ? "regular" : "occasional";
        },
        calibrator};
    std::printf("\nper-category screening (note: each category can be internally\n"
                "consistent while the two populations disagree — it is the\n"
                "issuer-reordered test above that compares them):\n");
    for (const auto& [label, result] : by_frequency.test(history.view()).per_category) {
        std::printf("  %-12s %s\n", label.c_str(),
                    result.passed ? "PASS" : "FAIL (suspicious)");
    }
    std::printf("\nverdict: %s\n",
                reordered.passed ? "no collusion signature found"
                                 : "history is inconsistent with an honest player "
                                   "once grouped by issuer - likely collusion");
    return 0;
}
