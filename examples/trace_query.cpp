// Forensics over a decision-trace dump: filter the JSONL emitted by
// `reputation_server --trace-dump` (or any obs::to_jsonl producer) down
// to the records that answer "why was server S flagged?".
//
//   build/examples/trace_query <file|-|--url=HOST:PORT>
//                              [--server=ID] [--verdict=V]
//                              [--source=S] [--failing] [--margin-below=X]
//                              [--limit=N] [--jsonl]
//
// `--url=HOST:PORT` pulls `/traces` from a live daemon's introspection
// endpoint (net/http_client.h) instead of reading a file — forensics
// against a running `reputation_server --listen=PORT` without a dump
// step in between.
//
// By default every match prints as a human-readable evidence summary —
// the failing suffix length, its L1 distance vs the calibrated ε, p̂, the
// reorder permutation summary.  `--jsonl` re-emits the raw matching lines
// instead, so queries compose:
//
//   reputation_server --trace-dump | trace_query - --server=4 --jsonl
//       | trace_query - --margin-below=0
//
// Lines that do not parse as DecisionRecords (the workload's own output,
// metric dumps) are skipped, so piping the server's full stdout works.
// Exits 0 when at least one record matched, 1 otherwise.
//
// Exercises: obs::from_jsonl / obs::to_jsonl, obs::DecisionRecord,
// net::http_get.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "net/http_client.h"
#include "obs/trace.h"

using hpr::obs::DecisionRecord;
using hpr::obs::StageEvidence;

namespace {

struct Query {
    std::string path;
    std::string url_host;         ///< nonempty = scrape /traces instead
    std::uint16_t url_port = 0;
    std::optional<std::uint64_t> server;
    std::optional<std::string> verdict;
    std::optional<std::string> source;
    bool failing_only = false;
    std::optional<double> margin_below;
    std::optional<std::size_t> limit;
    bool raw_jsonl = false;
};

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s <file|-|--url=HOST:PORT> [options]\n"
                 "  --url=HOST:PORT   pull /traces from a live daemon instead\n"
                 "                    of reading a file (HOST is an IPv4\n"
                 "                    literal, e.g. 127.0.0.1:9100)\n"
                 "  --server=ID       keep records about this entity\n"
                 "  --verdict=V       keep records with this verdict\n"
                 "                    (suspicious, assessed, insufficient-history,\n"
                 "                     clear, insufficient)\n"
                 "  --source=S        keep records from this pipeline\n"
                 "                    (two_phase, online_screener)\n"
                 "  --failing         keep records with a failing stage\n"
                 "  --margin-below=X  keep records whose min margin (eps - d) < X\n"
                 "  --limit=N         print at most N matches\n"
                 "  --jsonl           re-emit raw matching lines instead of summaries\n",
                 argv0);
    return 2;
}

bool parse_url(const char* spec, Query& query) {
    const char* colon = std::strrchr(spec, ':');
    if (colon == nullptr || colon == spec) return false;
    char* end = nullptr;
    const unsigned long port = std::strtoul(colon + 1, &end, 10);
    if (end == colon + 1 || *end != '\0' || port == 0 || port > 65535) {
        return false;
    }
    query.url_host.assign(spec, static_cast<std::size_t>(colon - spec));
    query.url_port = static_cast<std::uint16_t>(port);
    return true;
}

bool parse_args(int argc, char** argv, Query& query) {
    if (argc < 2) return false;
    if (std::strncmp(argv[1], "--url=", 6) == 0) {
        if (!parse_url(argv[1] + 6, query)) return false;
    } else {
        query.path = argv[1];
    }
    for (int i = 2; i < argc; ++i) {
        const char* arg = argv[i];
        const auto value_of = [&](const char* prefix) -> const char* {
            const std::size_t len = std::strlen(prefix);
            return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
        };
        if (const char* server = value_of("--server=")) {
            char* end = nullptr;
            const unsigned long long id = std::strtoull(server, &end, 10);
            if (end == server || *end != '\0') return false;
            query.server = id;
        } else if (const char* verdict = value_of("--verdict=")) {
            query.verdict = verdict;
        } else if (const char* source = value_of("--source=")) {
            query.source = source;
        } else if (std::strcmp(arg, "--failing") == 0) {
            query.failing_only = true;
        } else if (const char* margin = value_of("--margin-below=")) {
            char* end = nullptr;
            const double x = std::strtod(margin, &end);
            if (end == margin || *end != '\0') return false;
            query.margin_below = x;
        } else if (const char* limit = value_of("--limit=")) {
            char* end = nullptr;
            const unsigned long long n = std::strtoull(limit, &end, 10);
            if (end == limit || *end != '\0') return false;
            query.limit = n;
        } else if (std::strcmp(arg, "--jsonl") == 0) {
            query.raw_jsonl = true;
        } else {
            return false;
        }
    }
    return true;
}

bool matches(const Query& query, const DecisionRecord& record) {
    if (query.server && record.server != *query.server) return false;
    if (query.verdict && record.verdict != *query.verdict) return false;
    if (query.source && record.source != *query.source) return false;
    if (query.failing_only && !record.failed.has_value()) return false;
    if (query.margin_below) {
        // Prefer the recorded minimum; a failing stage is the evidence
        // when the record predates margin bookkeeping.
        double margin = record.min_margin;
        if (record.failed) margin = std::min(margin, record.failed->margin());
        if (!(margin < *query.margin_below)) return false;
    }
    return true;
}

void print_summary(const DecisionRecord& record) {
    std::printf("trace %llu  %-15s server=%llu  verdict=%s",
                static_cast<unsigned long long>(record.trace_id),
                record.source.c_str(),
                static_cast<unsigned long long>(record.server),
                record.verdict.c_str());
    if (!record.transition.empty()) {
        std::printf(" (%s)", record.transition.c_str());
    }
    std::printf("\n  history=%llu tx  m=%u  p_hat=%.4f  stages=%zu",
                static_cast<unsigned long long>(record.history_length),
                record.window_size, record.p_hat, record.stages.size());
    if (!record.stages.empty()) std::printf("  min_margin=%.5f", record.min_margin);
    if (record.trust) std::printf("  trust=%.4f", *record.trust);
    std::printf("\n");
    if (record.failed) {
        const StageEvidence& f = *record.failed;
        std::printf("  FAILED suffix=%llu tx (%llu windows): d=%.5f > eps=%.5f "
                    "(margin %.5f, p_hat %.4f)\n",
                    static_cast<unsigned long long>(f.suffix_length),
                    static_cast<unsigned long long>(f.windows), f.distance,
                    f.epsilon, f.margin(), f.p_hat);
    }
    if (record.reorder.applied) {
        std::printf("  reorder: %llu issuers, largest group %llu, %.1f%% of "
                    "positions moved\n",
                    static_cast<unsigned long long>(record.reorder.issuers),
                    static_cast<unsigned long long>(record.reorder.largest_group),
                    100.0 * record.reorder.displaced_fraction);
    }
    if (record.runs.evaluated) {
        std::printf("  runs test: %s (z=%.3f, bound %.3f)\n",
                    record.runs.passed ? "passed" : "FAILED", record.runs.z,
                    record.runs.z_threshold);
    }
}

}  // namespace

int main(int argc, char** argv) {
    Query query;
    if (!parse_args(argc, argv, query)) return usage(argv[0]);

    std::ifstream file;
    std::istringstream fetched;
    std::istream* in = &std::cin;
    if (!query.url_host.empty()) {
        // Push the entity filter down to the daemon when we have one;
        // everything else still filters locally.
        std::string target = "/traces";
        if (query.server) target += "?server=" + std::to_string(*query.server);
        const auto result =
            hpr::net::http_get(query.url_host, query.url_port, target);
        if (!result || result->status != 200) {
            std::fprintf(stderr,
                         "trace_query: GET %s:%u%s failed%s\n",
                         query.url_host.c_str(), query.url_port, target.c_str(),
                         result ? (" (HTTP " + std::to_string(result->status) +
                                   ")").c_str()
                                : " (no response)");
            return 2;
        }
        fetched.str(result->body);
        in = &fetched;
    } else if (query.path != "-") {
        file.open(query.path);
        if (!file) {
            std::fprintf(stderr, "trace_query: cannot open '%s'\n",
                         query.path.c_str());
            return 2;
        }
        in = &file;
    }

    std::size_t parsed = 0;
    std::size_t matched = 0;
    std::size_t printed = 0;
    std::string line;
    while (std::getline(*in, line)) {
        DecisionRecord record;
        if (!hpr::obs::from_jsonl(line, record)) continue;  // not a trace line
        ++parsed;
        if (!matches(query, record)) continue;
        ++matched;
        if (query.limit && printed >= *query.limit) continue;
        ++printed;
        if (query.raw_jsonl) {
            std::printf("%s\n", line.c_str());
        } else {
            print_summary(record);
        }
    }
    if (!query.raw_jsonl) {
        std::printf("matched %zu of %zu decision records\n", matched, parsed);
    }
    return matched > 0 ? 0 : 1;
}
