// Fully decentralized deployment (paper §2's P2P sketch, composed from
// the overlay + gossip + two-phase assessor substrates):
//
//   build/examples/p2p_network
//
// 64 peers form a consistent-hashing overlay; feedback for three file
// providers is published with 3-way replication; a downloader assesses
// each provider from overlay-retrieved logs (no central server), peers
// agree on global trust by weighted push-sum gossip, and the system keeps
// answering through node crashes.

#include <cstdio>

#include "hpr.h"

using namespace hpr;

int main() {
    sim::P2PConfig config;
    config.overlay.nodes = 64;
    config.overlay.replication = 3;
    config.assessment.mode = core::ScreeningMode::kMulti;
    config.assessment.test.bonferroni = true;
    config.seed = 99;
    sim::DecentralizedReputationSystem network{config};

    // Three providers: solid, mediocre, and a hibernating attacker.
    stats::Rng rng{2026};
    const auto publish = [&](const repsys::TransactionHistory& history) {
        for (const auto& f : history.feedbacks()) network.record(f);
    };
    publish(sim::honest_history(600, 0.95, rng, 1));
    publish(sim::honest_history(600, 0.82, rng, 2));
    publish(sim::hibernating_history(580, 25, 0.95, rng, 3));

    std::printf("assessments from overlay-retrieved logs (64 peers, 3 replicas):\n");
    for (const repsys::EntityId server : {1u, 2u, 3u}) {
        const auto assessment = network.assess(server);
        std::printf("  provider %u: %-22s trust=%-9s (%zu routing hops)\n", server,
                    core::to_string(assessment.verdict),
                    assessment.trust ? std::to_string(*assessment.trust).c_str()
                                     : "withheld",
                    network.last_hops());
    }

    // Decentralized consensus on provider 1's trust across 20 peers that
    // each saw only a shard of its transactions.
    const auto consensus = network.gossip_trust(1, 20);
    std::printf("\ngossip consensus on provider 1: %.4f (exact %.4f) after %zu "
                "push-sum rounds\n",
                consensus.value, consensus.exact, consensus.rounds);

    // Crash a third of the overlay; the system keeps answering.
    stats::Rng chaos{7};
    std::size_t killed = 0;
    while (killed < 21) {
        const auto victim = static_cast<std::size_t>(chaos.uniform_int(std::uint64_t{64}));
        if (network.overlay().live_nodes() > 0) {
            network.fail_node(victim);
        }
        ++killed;
    }
    std::printf("\nafter crashing ~1/3 of the overlay (%zu live nodes):\n",
                network.overlay().live_nodes());
    for (const repsys::EntityId server : {1u, 2u, 3u}) {
        const auto assessment = network.assess(server);
        std::printf("  provider %u: %s\n", server, core::to_string(assessment.verdict));
    }
    std::printf("\n(insufficient-history answers mean every replica of that "
                "provider's log died - replication 3 of 64 nodes bounds the "
                "blast radius)\n");
    return 0;
}
