// A miniature reputation service, streaming-first: the feedback store
// ingests a mixed population's transaction stream while the serving
// layer's incremental screener bank (serve::BatchAssessor) monitors
// every server live — flagging mid-stream, recovering after sustained
// good service, each stream bounded to a retention horizon of complete
// windows.  On demand the service answers assessments from the standing
// stream states (the primary path), cross-checks them against the batch
// two-phase oracle, and reports the EigenTrust / credibility-weighted
// related-work baselines.  A retention pass at the end shows the
// eviction tie-in: dropping cold history from the store also releases
// the affected screeners.  Every layer records into the process-wide obs
// registry; the run ends with a metrics dump — Prometheus text by
// default, or a JSON snapshot with `--json`.  With `--trace-dump` the
// decision tracer is switched on as well and the run additionally emits
// the retained DecisionRecords as JSONL — the audit trail a forensics
// pipeline (examples/trace_query) consumes.
//
// With `--listen=PORT` the example becomes a **daemon**: the epoll
// introspection front-end (net/http_server.h) serves the browsable
// state tree — /metrics, /metrics.json, /traces, /servers, /store,
// /calibration (docs/observability.md) — while the foreground keeps
// ingesting and assessing a live transaction stream.  SIGINT/SIGTERM
// (or `--duration=S`) drains in-flight scrapes and exits 0 with the
// usual final metrics dump.
//
// Daemon mode also runs the full self-observation stack: a flight
// recorder samples the registry every `--record-interval` seconds into
// the /timeseries ring, the watchdog derives the /health verdict (and
// hpr_health_* gauges) from it — including an event-loop heartbeat via
// the HTTP server's eventfd self-ping — and `--blackbox=PATH` arms the
// crash black-box so SIGSEGV/SIGABRT/SIGBUS dump the final snapshots,
// health state and traces before the process dies.
//
//   build/examples/reputation_server [--json] [--trace-dump[=N]]
//                                    [--trace-sample=R] [--threads=N]
//                                    [--shards=N] [--horizon=W]
//                                    [--listen=PORT] [--duration=S]
//                                    [--record-interval=S]
//                                    [--blackbox=PATH]
//
// Exercises: repsys::FeedbackStore (sharded), serve::BatchAssessor's
// incremental screener bank over core::OnlineScreener,
// core::TwoPhaseAssessor as the batch oracle, repsys::EigenTrust,
// repsys::CredibilityWeightedTrust, core::ChangePointDetector,
// obs::Registry + exporters, obs::Tracer, obs::FlightRecorder +
// obs::Watchdog + obs::BlackBox, obs::IntrospectionTree +
// net::HttpServer (daemon mode).

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "hpr.h"

using namespace hpr;

namespace {

struct Population {
    repsys::EntityId id;
    std::string label;
    double p_good;           // probability of good service...
    std::size_t flip_after;  // ...until this many transactions (0 = never flips)
};

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--json] [--trace-dump[=N]] [--trace-sample=R]\n"
                 "          [--threads=N] [--shards=N] [--horizon=W]\n"
                 "          [--listen=PORT] [--duration=S]\n"
                 "  --json            emit the metrics dump as JSON\n"
                 "  --trace-dump[=N]  enable decision tracing and dump the last N\n"
                 "                    retained DecisionRecords as JSONL (default: all)\n"
                 "  --trace-sample=R  trace sampling rate in [0,1] (default 1)\n"
                 "  --threads=N       batch-assessment threads (default: hardware)\n"
                 "  --shards=N        feedback-store lock stripes (default: %zu)\n"
                 "  --horizon=W       screener retention horizon in complete windows\n"
                 "                    (default: 64; 0 = unbounded)\n"
                 "  --listen=PORT     daemon mode: serve the introspection tree on\n"
                 "                    127.0.0.1:PORT while ingesting+assessing live\n"
                 "                    load, until SIGINT/SIGTERM (tracing enabled)\n"
                 "  --duration=S      daemon mode: stop after S seconds (default:\n"
                 "                    run until a signal arrives)\n"
                 "  --record-interval=S  daemon mode: flight-recorder sampling\n"
                 "                    cadence in seconds (default: 1)\n"
                 "  --ingest-budget=N daemon mode: pending-records budget of the\n"
                 "                    POST /ingest admission gate (default: 65536)\n"
                 "  --blackbox=PATH   daemon mode: arm the crash black-box; on\n"
                 "                    SIGSEGV/SIGABRT/SIGBUS the final snapshots,\n"
                 "                    health state and traces are dumped to PATH\n",
                 argv0, hpr::repsys::FeedbackStore::kDefaultShards);
    return 2;
}

/// Strict decimal parse of a whole flag value into [min_value, ULONG_MAX],
/// rejecting empty strings, trailing garbage, signs, and — via
/// errno/ERANGE — values strtoul would otherwise silently saturate
/// (e.g. --threads=99999999999999999999).  Returns false on any defect.
bool parse_flag_size(const char* text, unsigned long min_value,
                     std::size_t& out) {
    if (*text == '\0' || *text == '-' || *text == '+') return false;
    errno = 0;
    char* end = nullptr;
    const unsigned long value = std::strtoul(text, &end, 10);
    if (errno == ERANGE || end == text || *end != '\0') return false;
    if (value < min_value || value > SIZE_MAX) return false;
    out = static_cast<std::size_t>(value);
    return true;
}

/// Strict parse of a flag value into a double in [0, 1], with the same
/// no-garbage and no-overflow (errno/ERANGE) discipline.
bool parse_flag_unit(const char* text, double& out) {
    if (*text == '\0') return false;
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(text, &end);
    if (errno == ERANGE || end == text || *end != '\0') return false;
    if (!(value >= 0.0) || value > 1.0) return false;
    out = value;
    return true;
}

/// Strict parse of a non-negative seconds value (decimals allowed).
bool parse_flag_seconds(const char* text, double& out) {
    if (*text == '\0') return false;
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(text, &end);
    if (errno == ERANGE || end == text || *end != '\0') return false;
    if (!(value >= 0.0)) return false;
    out = value;
    return true;
}

/// The end-of-run metrics dump both modes share — what a deployment
/// would log on shutdown even though the live /metrics page existed.
void dump_metrics(bool json) {
    obs::publish_uptime();
    if (json) {
        std::printf("\n--- metrics (json) ---\n%s\n",
                    obs::to_json(obs::default_registry()).c_str());
    } else {
        std::printf("\n--- metrics (prometheus) ---\n%s",
                    obs::to_prometheus(obs::default_registry()).c_str());
    }
}

// Signal plumbing of daemon mode: the handler flips a flag for the load
// loop and pokes the HTTP server's eventfd — both async-signal-safe.
std::atomic<bool> g_stop{false};
std::atomic<net::HttpServer*> g_signal_server{nullptr};

void handle_stop_signal(int) {
    g_stop.store(true, std::memory_order_release);
    if (net::HttpServer* server =
            g_signal_server.load(std::memory_order_acquire)) {
        server->request_stop();
    }
}

/// Daemon mode: the introspection front-end serves the browsable tree
/// while this thread keeps ingesting the population's stream and
/// periodically re-assessing it — scrapes and load run concurrently
/// against the same store/assessor/registry, exactly the deployment
/// shape bench/introspection_daemon measures.
int run_daemon(repsys::FeedbackStore& store, serve::BatchAssessor& assessor,
               std::shared_ptr<stats::Calibrator> calibrator,
               const std::vector<Population>& servers, std::uint16_t port,
               double duration, bool json_metrics, double record_interval,
               const std::string& blackbox_path, std::size_t ingest_budget) {
    // The self-observation stack: recorder feeds watchdog feeds (when
    // armed) the crash black-box, all driven by the recorder's tick.
    obs::FlightRecorder recorder{{.interval_seconds = record_interval}};
    obs::Watchdog watchdog;
    obs::BlackBox& blackbox = obs::BlackBox::instance();
    if (!blackbox_path.empty() && !blackbox.arm(blackbox_path)) {
        std::fprintf(stderr, "daemon: cannot arm black-box at %s: %s\n",
                     blackbox_path.c_str(), std::strerror(errno));
        return 1;
    }
    recorder.set_on_sample([&watchdog, &blackbox](
                               const obs::FlightRecorder& recorder_ref,
                               const obs::RecorderSnapshot&) {
        watchdog.evaluate(recorder_ref);
        if (blackbox.armed()) {
            blackbox.publish(obs::render_blackbox(recorder_ref, &watchdog,
                                                  &obs::default_tracer()));
        }
    });

    obs::IntrospectionTree tree;
    net::IntrospectionSources sources;
    sources.registry = &obs::default_registry();
    sources.tracer = &obs::default_tracer();
    sources.store = &store;
    sources.assessor = &assessor;
    sources.calibrator = std::move(calibrator);
    sources.recorder = &recorder;
    sources.watchdog = &watchdog;
    net::register_introspection(tree, sources);

    // The write path: POST /ingest lands wire batches in the same store
    // and screener bank the in-process load loop feeds, gated by a
    // bounded pending-records budget (GET /assess and /ingest/stats ride
    // on the tree).
    net::IngestServiceConfig ingest_config;
    if (ingest_budget != 0) ingest_config.gate.pending_budget = ingest_budget;
    net::IngestService ingest{store, assessor, ingest_config};
    net::register_ingest(tree, ingest);

    net::HttpServerConfig http;
    http.port = port;
    http.ingest_gate = &ingest.gate();
    net::HttpServer server{http, net::make_http_handler(tree, &ingest)};
    server.start();
    // Event-loop responsiveness: each watchdog evaluation reads the lag
    // of the last acknowledged self-ping and queues the next one.
    watchdog.set_heartbeat_probe([&server] {
        const double lag = server.ping_lag_seconds();
        (void)server.ping();
        return lag;
    });
    recorder.start();
    g_signal_server.store(&server, std::memory_order_release);
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    std::printf("daemon: listening on http://127.0.0.1:%u%s\n", server.port(),
                duration > 0.0 ? "" : " (SIGINT/SIGTERM to stop)");
    std::fflush(stdout);

    stats::Rng rng{4242};
    std::vector<repsys::EntityId> ids;
    ids.reserve(servers.size());
    for (const auto& s : servers) ids.push_back(s.id);
    const auto start = std::chrono::steady_clock::now();
    std::size_t tx = 0;
    while (!g_stop.load(std::memory_order_acquire)) {
        if (duration > 0.0 &&
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                    .count() >= duration) {
            break;
        }
        for (const auto& s : servers) {
            bool good;
            if (s.flip_after != 0 && tx >= s.flip_after) {
                good = s.id == 4 ? false : rng.bernoulli(0.85);
            } else {
                good = rng.bernoulli(s.p_good);
            }
            const repsys::Feedback feedback{
                static_cast<repsys::Timestamp>(tx + 1), s.id,
                static_cast<repsys::EntityId>(
                    100 + rng.uniform_int(std::uint64_t{60})),
                good ? repsys::Rating::kPositive : repsys::Rating::kNegative};
            store.submit(feedback);
            assessor.observe(feedback);
        }
        ++tx;
        // First assessment at round 8, while every stream is still too
        // short for a screener verdict: the batch falls through to the
        // full two-phase scan, so scrapes see that path's metrics from
        // the start instead of only the streaming shortcuts.
        if (tx == 8 || tx % 64 == 0) {
            const auto assessments = assessor.assess(store, ids);
            (void)assessments;
        }
        if (tx % 1024 == 0 && tx > 4096) {
            // Retention keeps the daemon's resident state bounded no
            // matter how long it runs; forgotten servers release their
            // screeners too.
            std::vector<repsys::EntityId> forgotten;
            store.evict_before(static_cast<repsys::Timestamp>(tx - 4096),
                               &forgotten);
            assessor.drop_streams(forgotten);
        }
        // ~1k transaction rounds/s: enough live churn for every scrape
        // to see fresh state without saturating a CI host.
        std::this_thread::sleep_for(std::chrono::milliseconds{1});
    }

    recorder.stop();
    server.stop();
    g_signal_server.store(nullptr, std::memory_order_release);
    const obs::HealthVerdict verdict = watchdog.last_verdict();
    std::printf("daemon: drained after %zu transaction rounds; served %llu "
                "responses (%llu rejected, %llu timed out, %llu malformed, "
                "%llu bytes)\n",
                tx,
                static_cast<unsigned long long>(server.requests_served()),
                static_cast<unsigned long long>(server.rejected_connections()),
                static_cast<unsigned long long>(server.timed_out_connections()),
                static_cast<unsigned long long>(server.malformed_requests()),
                static_cast<unsigned long long>(server.bytes_sent()));
    std::printf("daemon: ingest accepted %llu requests (%llu records), "
                "rejected %llu, shed %llu (gate pending %zu of %zu)\n",
                static_cast<unsigned long long>(ingest.accepted_requests()),
                static_cast<unsigned long long>(ingest.accepted_records()),
                static_cast<unsigned long long>(ingest.rejected_requests()),
                static_cast<unsigned long long>(ingest.gate().shed_total()),
                ingest.gate().pending(),
                ingest.gate().config().pending_budget);
    std::printf("daemon: recorder took %llu samples (%zu retained), health "
                "%s after %llu evaluations, black-box %s (%llu publishes)\n",
                static_cast<unsigned long long>(recorder.samples_taken()),
                recorder.size(), verdict.healthy ? "ok" : "degraded",
                static_cast<unsigned long long>(watchdog.evaluations()),
                blackbox.armed() ? "armed" : "off",
                static_cast<unsigned long long>(blackbox.publishes()));
    // No crash happened: release the handlers and leave an empty file.
    blackbox.disarm();
    dump_metrics(json_metrics);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    bool json_metrics = false;
    bool trace_dump = false;
    std::size_t trace_dump_last = SIZE_MAX;  // SIZE_MAX = every retained record
    double trace_sample = 1.0;
    std::size_t threads = 0;  // 0 = hardware concurrency
    std::size_t shards = repsys::FeedbackStore::kDefaultShards;
    std::size_t horizon = 64;  // screener retention, in complete windows
    std::size_t listen_port = 0;
    bool listen = false;
    double duration = 0.0;  // daemon run time; 0 = until a signal
    double record_interval = 1.0;  // flight-recorder cadence, seconds
    std::size_t ingest_budget = 0;  // 0 = the gate's default budget
    std::string blackbox_path;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--json") == 0) {
            json_metrics = true;
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            if (!parse_flag_size(arg + 10, 0, threads)) return usage(argv[0]);
        } else if (std::strncmp(arg, "--shards=", 9) == 0) {
            if (!parse_flag_size(arg + 9, 1, shards)) return usage(argv[0]);
        } else if (std::strncmp(arg, "--horizon=", 10) == 0) {
            if (!parse_flag_size(arg + 10, 0, horizon)) return usage(argv[0]);
        } else if (std::strcmp(arg, "--trace-dump") == 0) {
            trace_dump = true;
        } else if (std::strncmp(arg, "--trace-dump=", 13) == 0) {
            trace_dump = true;
            if (!parse_flag_size(arg + 13, 0, trace_dump_last)) {
                return usage(argv[0]);
            }
        } else if (std::strncmp(arg, "--trace-sample=", 15) == 0) {
            if (!parse_flag_unit(arg + 15, trace_sample)) return usage(argv[0]);
        } else if (std::strncmp(arg, "--listen=", 9) == 0) {
            if (!parse_flag_size(arg + 9, 1, listen_port) ||
                listen_port > 65535) {
                return usage(argv[0]);
            }
            listen = true;
        } else if (std::strncmp(arg, "--duration=", 11) == 0) {
            if (!parse_flag_seconds(arg + 11, duration)) return usage(argv[0]);
        } else if (std::strncmp(arg, "--record-interval=", 18) == 0) {
            if (!parse_flag_seconds(arg + 18, record_interval) ||
                record_interval <= 0.0) {
                return usage(argv[0]);
            }
        } else if (std::strncmp(arg, "--ingest-budget=", 16) == 0) {
            if (!parse_flag_size(arg + 16, 1, ingest_budget)) {
                return usage(argv[0]);
            }
        } else if (std::strncmp(arg, "--blackbox=", 11) == 0) {
            blackbox_path = arg + 11;
            if (blackbox_path.empty()) return usage(argv[0]);
        } else {
            return usage(argv[0]);
        }
    }
    // Build identity and uptime belong in every dump and every scrape.
    obs::register_build_identity();
    if (trace_dump || listen) {
        // Daemon mode traces unconditionally: /traces is part of the
        // introspection surface it exists to serve.
        obs::default_tracer().set_sample_rate(trace_sample);
        obs::default_tracer().set_enabled(true);
    }
    const std::vector<Population> servers{
        {1, "honest premium (p=0.97)", 0.97, 0},
        {2, "honest budget (p=0.90)", 0.90, 0},
        {3, "quality-drop (0.96 -> 0.85 at tx 500)", 0.96, 500},
        {4, "hibernating attacker (flips at tx 700)", 0.96, 700},
    };

    repsys::FeedbackStore store{shards};
    const auto calibrator = core::make_calibrator({});
    {
        // Warm-start the shared calibrator across its worker pool before
        // traffic arrives: every window-count bucket a 1000-transaction
        // history can hit, p̂ in the range this population produces.  In a
        // real deployment this cache ships with the binary
        // (Calibrator::save_cache / load_cache) instead.
        const obs::Stopwatch warm_watch;
        const std::size_t warmed =
            core::warm_calibration(*calibrator, 10, 1000 / 10, 0.55, 1.0);
        const double warm_s = warm_watch.seconds();
        std::printf("warm start: %zu calibration keys in %.1fs on %zu threads "
                    "(%.0f keys/s)\n\n",
                    warmed, warm_s, calibrator->threads(),
                    warm_s > 0.0 ? static_cast<double>(warmed) / warm_s : 0.0);
    }

    // The serving layer, streaming-first: every ingested feedback also
    // updates its server's horizon-bounded screener in the bank, so
    // assessments can later answer from standing stream state.
    serve::BatchAssessorConfig serve_config;
    serve_config.assessment.mode = core::ScreeningMode::kMulti;
    serve_config.assessment.test.bonferroni = true;
    serve_config.threads = threads;
    serve_config.screener_horizon = horizon;
    serve::BatchAssessor assessor{
        serve_config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")},
        calibrator};

    if (listen) {
        return run_daemon(store, assessor, calibrator, servers,
                          static_cast<std::uint16_t>(listen_port), duration,
                          json_metrics, record_interval, blackbox_path,
                          ingest_budget);
    }

    // Live ingestion: every feedback goes to the sharded store and to the
    // serving layer's screener bank.
    stats::Rng rng{4242};
    std::map<repsys::EntityId, std::size_t> flagged_at;
    for (std::size_t tx = 0; tx < 1000; ++tx) {
        for (const auto& s : servers) {
            bool good;
            if (s.flip_after != 0 && tx >= s.flip_after) {
                good = s.id == 4 ? false  // attacker: always cheat after flip
                                 : rng.bernoulli(0.85);  // quality drop
            } else {
                good = rng.bernoulli(s.p_good);
            }
            const repsys::Feedback feedback{
                static_cast<repsys::Timestamp>(tx + 1), s.id,
                static_cast<repsys::EntityId>(100 + rng.uniform_int(std::uint64_t{60})),
                good ? repsys::Rating::kPositive : repsys::Rating::kNegative};
            store.submit(feedback);
            const auto before = assessor.stream_state(s.id);
            assessor.observe(feedback);
            if (before != core::StreamState::kSuspicious &&
                assessor.stream_state(s.id) == core::StreamState::kSuspicious &&
                flagged_at.find(s.id) == flagged_at.end()) {
                flagged_at[s.id] = tx + 1;
            }
        }
    }

    std::printf("live monitoring after 1000 transactions per server "
                "(horizon: %zu windows, %zu streams, %zu bytes resident):\n",
                horizon, assessor.tracked_streams(),
                assessor.stream_memory_bytes());
    for (const auto& s : servers) {
        std::printf("  %-42s state=%-12s", s.label.c_str(),
                    core::to_string(assessor.stream_state(s.id)));
        if (const auto it = flagged_at.find(s.id); it != flagged_at.end()) {
            std::printf(" first flagged at tx %zu", it->second);
        }
        std::printf("\n");
    }

    // On-demand assessment (what a client asks before transacting):
    // answered from the standing stream states, then cross-checked
    // against the batch two-phase oracle over the full histories.
    const auto streaming = assessor.assess_all(store);
    const auto oracle = assessor.assess_batch(store, store.servers());
    std::printf("\nassessment, streaming-first vs batch oracle (beta trust, "
                "%zu shards, %zu threads):\n",
                store.shard_count(), assessor.threads());
    std::size_t agreements = 0;
    for (std::size_t i = 0; i < streaming.size(); ++i) {
        const auto& fast = streaming[i].assessment;
        const auto& slow = oracle[i].assessment;
        const bool fast_ok = fast.verdict != core::Verdict::kSuspicious;
        const bool slow_ok = slow.verdict != core::Verdict::kSuspicious;
        agreements += fast_ok == slow_ok;
        std::printf("  server %u: streaming=%-12s oracle=%-12s trust=%s\n",
                    streaming[i].server, core::to_string(fast.verdict),
                    core::to_string(slow.verdict),
                    fast.trust ? std::to_string(*fast.trust).c_str()
                               : "(withheld)");
    }
    std::printf("  accept/reject agreement: %zu/%zu\n", agreements,
                streaming.size());

    // Regime report for the quality-drop server (paper §4: false alerts
    // "help us identify such factors" — the change-point detector makes
    // the factor explicit).
    const core::ChangePointDetector detector;
    const auto changes = detector.detect(store.history(3).view());
    std::printf("\nchange points in server 3's stream:\n");
    for (const auto& cp : changes) {
        std::printf("  at window %zu (tx ~%zu): p %.2f -> %.2f (gain %.1f)\n",
                    cp.window_index, cp.window_index * 10, cp.p_before, cp.p_after,
                    cp.gain);
    }

    // Related-work baselines over the same store.
    std::vector<repsys::Feedback> all;
    for (const auto id : store.servers()) {
        const auto& h = store.history(id).feedbacks();
        all.insert(all.end(), h.begin(), h.end());
    }
    std::sort(all.begin(), all.end(),
              [](const repsys::Feedback& a, const repsys::Feedback& b) {
                  return a.time < b.time;
              });
    const auto eigen = repsys::EigenTrust::compute(all);
    const auto credibility = repsys::CredibilityWeightedTrust::compute(store);
    std::printf("\nbaselines (rank servers, but cannot tell honest-90%% from "
                "engineered-90%%):\n");
    std::printf("  %-8s %12s %14s\n", "server", "eigentrust", "credibility");
    for (const auto& s : servers) {
        std::printf("  %-8u %12.4f %14.4f\n", s.id, eigen.score(s.id),
                    credibility.at(s.id));
    }

    // Retention pass: evicting cold history from the store also releases
    // the forgotten servers' screeners — the store's eviction machinery
    // bounds the screener bank, not just the feedback logs.
    {
        std::vector<repsys::EntityId> forgotten;
        const std::size_t evicted = store.evict_before(1001, &forgotten);
        const std::size_t released = assessor.drop_streams(forgotten);
        std::printf("\nretention: evicted %zu feedbacks, forgot %zu servers, "
                    "released %zu screeners (%zu streams remain)\n",
                    evicted, forgotten.size(), released,
                    assessor.tracked_streams());
    }

    // The /metrics endpoint of a real deployment (daemon mode serves it
    // live): everything the layers above recorded — calibration cache
    // behavior, worker-pool queueing, screening verdicts and phase
    // latencies, store ingest levels, screener-bank occupancy and
    // eviction.
    dump_metrics(json_metrics);

    // The forensics feed: every retained DecisionRecord, oldest first,
    // one JSON object per line.  Pipe into examples/trace_query to answer
    // "why was server S flagged?".
    if (trace_dump) {
        const auto records = obs::default_tracer().ring().drain();
        std::size_t begin = 0;
        if (trace_dump_last < records.size()) {
            begin = records.size() - trace_dump_last;
        }
        std::printf("\n--- decision traces (jsonl) ---\n");
        for (std::size_t i = begin; i < records.size(); ++i) {
            std::printf("%s\n", obs::to_jsonl(records[i]).c_str());
        }
    }
    return 0;
}
