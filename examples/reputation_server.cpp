// A miniature reputation service: the feedback store ingests a mixed
// population's transaction stream, a streaming screener monitors every
// server live (flagging mid-stream, recovering after sustained good
// service), and on demand the service answers with two-phase assessments
// plus the EigenTrust / credibility-weighted related-work baselines.
// Every layer records into the process-wide obs registry; the run ends
// with a metrics dump — Prometheus text by default, or a JSON snapshot
// with `--json` — exactly what a real deployment would expose on a
// /metrics endpoint.  With `--trace-dump` the decision tracer is switched
// on as well and the run additionally emits the retained DecisionRecords
// as JSONL — the audit trail a forensics pipeline (examples/trace_query)
// consumes.
//
//   build/examples/reputation_server [--json] [--trace-dump[=N]]
//                                    [--trace-sample=R] [--threads=N]
//                                    [--shards=N]
//
// Exercises: repsys::FeedbackStore (sharded), core::OnlineScreener,
// serve::BatchAssessor over core::TwoPhaseAssessor, repsys::EigenTrust,
// repsys::CredibilityWeightedTrust, core::ChangePointDetector,
// obs::Registry + exporters, obs::Tracer.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "hpr.h"

using namespace hpr;

namespace {

struct Population {
    repsys::EntityId id;
    std::string label;
    double p_good;           // probability of good service...
    std::size_t flip_after;  // ...until this many transactions (0 = never flips)
};

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--json] [--trace-dump[=N]] [--trace-sample=R]\n"
                 "          [--threads=N] [--shards=N]\n"
                 "  --json            emit the metrics dump as JSON\n"
                 "  --trace-dump[=N]  enable decision tracing and dump the last N\n"
                 "                    retained DecisionRecords as JSONL (default: all)\n"
                 "  --trace-sample=R  trace sampling rate in [0,1] (default 1)\n"
                 "  --threads=N       batch-assessment threads (default: hardware)\n"
                 "  --shards=N        feedback-store lock stripes (default: %zu)\n",
                 argv0, hpr::repsys::FeedbackStore::kDefaultShards);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    bool json_metrics = false;
    bool trace_dump = false;
    long trace_dump_last = -1;  // -1 = every retained record
    double trace_sample = 1.0;
    std::size_t threads = 0;  // 0 = hardware concurrency
    std::size_t shards = repsys::FeedbackStore::kDefaultShards;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--json") == 0) {
            json_metrics = true;
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            char* end = nullptr;
            const long value = std::strtol(arg + 10, &end, 10);
            if (end == arg + 10 || *end != '\0' || value < 0) return usage(argv[0]);
            threads = static_cast<std::size_t>(value);
        } else if (std::strncmp(arg, "--shards=", 9) == 0) {
            char* end = nullptr;
            const long value = std::strtol(arg + 9, &end, 10);
            if (end == arg + 9 || *end != '\0' || value < 1) return usage(argv[0]);
            shards = static_cast<std::size_t>(value);
        } else if (std::strcmp(arg, "--trace-dump") == 0) {
            trace_dump = true;
        } else if (std::strncmp(arg, "--trace-dump=", 13) == 0) {
            trace_dump = true;
            char* end = nullptr;
            trace_dump_last = std::strtol(arg + 13, &end, 10);
            if (end == arg + 13 || *end != '\0' || trace_dump_last < 0) {
                return usage(argv[0]);
            }
        } else if (std::strncmp(arg, "--trace-sample=", 15) == 0) {
            char* end = nullptr;
            trace_sample = std::strtod(arg + 15, &end);
            if (end == arg + 15 || *end != '\0' || !(trace_sample >= 0.0) ||
                trace_sample > 1.0) {
                return usage(argv[0]);
            }
        } else {
            return usage(argv[0]);
        }
    }
    if (trace_dump) {
        obs::default_tracer().set_sample_rate(trace_sample);
        obs::default_tracer().set_enabled(true);
    }
    const std::vector<Population> servers{
        {1, "honest premium (p=0.97)", 0.97, 0},
        {2, "honest budget (p=0.90)", 0.90, 0},
        {3, "quality-drop (0.96 -> 0.85 at tx 500)", 0.96, 500},
        {4, "hibernating attacker (flips at tx 700)", 0.96, 700},
    };

    // Live ingestion: every feedback goes to the sharded store and to
    // that server's streaming screener.
    repsys::FeedbackStore store{shards};
    const auto calibrator = core::make_calibrator({});
    {
        // Warm-start the shared calibrator across its worker pool before
        // traffic arrives: every window-count bucket a 1000-transaction
        // history can hit, p̂ in the range this population produces.  In a
        // real deployment this cache ships with the binary
        // (Calibrator::save_cache / load_cache) instead.
        const obs::Stopwatch warm_watch;
        const std::size_t warmed =
            core::warm_calibration(*calibrator, 10, 1000 / 10, 0.55, 1.0);
        const double warm_s = warm_watch.seconds();
        std::printf("warm start: %zu calibration keys in %.1fs on %zu threads "
                    "(%.0f keys/s)\n\n",
                    warmed, warm_s, calibrator->threads(),
                    warm_s > 0.0 ? static_cast<double>(warmed) / warm_s : 0.0);
    }
    core::OnlineScreenerConfig screener_config;
    screener_config.test.bonferroni = true;
    std::map<repsys::EntityId, core::OnlineScreener> monitors;
    for (const auto& s : servers) {
        auto [it, inserted] =
            monitors.emplace(s.id, core::OnlineScreener{screener_config, calibrator});
        it->second.set_entity(s.id);  // label this stream's decision traces
    }

    stats::Rng rng{4242};
    std::map<repsys::EntityId, std::size_t> flagged_at;
    for (std::size_t tx = 0; tx < 1000; ++tx) {
        for (const auto& s : servers) {
            bool good;
            if (s.flip_after != 0 && tx >= s.flip_after) {
                good = s.id == 4 ? false  // attacker: always cheat after flip
                                 : rng.bernoulli(0.85);  // quality drop
            } else {
                good = rng.bernoulli(s.p_good);
            }
            const repsys::Feedback feedback{
                static_cast<repsys::Timestamp>(tx + 1), s.id,
                static_cast<repsys::EntityId>(100 + rng.uniform_int(std::uint64_t{60})),
                good ? repsys::Rating::kPositive : repsys::Rating::kNegative};
            store.submit(feedback);
            auto& monitor = monitors.at(s.id);
            const auto before = monitor.state();
            monitor.observe(feedback);
            if (before != core::StreamState::kSuspicious &&
                monitor.state() == core::StreamState::kSuspicious &&
                flagged_at.find(s.id) == flagged_at.end()) {
                flagged_at[s.id] = tx + 1;
            }
        }
    }

    std::printf("live monitoring after 1000 transactions per server:\n");
    for (const auto& s : servers) {
        const auto& monitor = monitors.at(s.id);
        std::printf("  %-42s state=%-12s", s.label.c_str(),
                    core::to_string(monitor.state()));
        if (const auto it = flagged_at.find(s.id); it != flagged_at.end()) {
            std::printf(" first flagged at tx %zu", it->second);
        }
        std::printf("\n");
    }

    // On-demand batch assessment (what a client asks before transacting):
    // every known server fanned across the worker pool in one call.
    serve::BatchAssessorConfig batch_config;
    batch_config.assessment.mode = core::ScreeningMode::kMulti;
    batch_config.assessment.test.bonferroni = true;
    batch_config.threads = threads;
    const serve::BatchAssessor batch_assessor{
        batch_config,
        std::shared_ptr<const repsys::TrustFunction>{
            repsys::make_trust_function("beta")},
        calibrator};
    std::printf("\ntwo-phase assessment (beta trust function, %zu shards, "
                "%zu threads):\n",
                store.shard_count(), batch_assessor.threads());
    for (const auto& result : batch_assessor.assess_all(store)) {
        std::printf("  server %u: verdict=%-12s trust=%s\n", result.server,
                    core::to_string(result.assessment.verdict),
                    result.assessment.trust
                        ? std::to_string(*result.assessment.trust).c_str()
                        : "(withheld)");
    }

    // Regime report for the quality-drop server (paper §4: false alerts
    // "help us identify such factors" — the change-point detector makes
    // the factor explicit).
    const core::ChangePointDetector detector;
    const auto changes = detector.detect(store.history(3).view());
    std::printf("\nchange points in server 3's stream:\n");
    for (const auto& cp : changes) {
        std::printf("  at window %zu (tx ~%zu): p %.2f -> %.2f (gain %.1f)\n",
                    cp.window_index, cp.window_index * 10, cp.p_before, cp.p_after,
                    cp.gain);
    }

    // Related-work baselines over the same store.
    std::vector<repsys::Feedback> all;
    for (const auto id : store.servers()) {
        const auto& h = store.history(id).feedbacks();
        all.insert(all.end(), h.begin(), h.end());
    }
    std::sort(all.begin(), all.end(),
              [](const repsys::Feedback& a, const repsys::Feedback& b) {
                  return a.time < b.time;
              });
    const auto eigen = repsys::EigenTrust::compute(all);
    const auto credibility = repsys::CredibilityWeightedTrust::compute(store);
    std::printf("\nbaselines (rank servers, but cannot tell honest-90%% from "
                "engineered-90%%):\n");
    std::printf("  %-8s %12s %14s\n", "server", "eigentrust", "credibility");
    for (const auto& s : servers) {
        std::printf("  %-8u %12.4f %14.4f\n", s.id, eigen.score(s.id),
                    credibility.at(s.id));
    }

    // The /metrics endpoint of a real deployment: everything the layers
    // above recorded — calibration cache behavior, worker-pool queueing,
    // screening verdicts and phase latencies, store ingest levels.
    if (json_metrics) {
        std::printf("\n--- metrics (json) ---\n%s\n",
                    obs::to_json(obs::default_registry()).c_str());
    } else {
        std::printf("\n--- metrics (prometheus) ---\n%s",
                    obs::to_prometheus(obs::default_registry()).c_str());
    }

    // The forensics feed: every retained DecisionRecord, oldest first,
    // one JSON object per line.  Pipe into examples/trace_query to answer
    // "why was server S flagged?".
    if (trace_dump) {
        const auto records = obs::default_tracer().ring().drain();
        std::size_t begin = 0;
        if (trace_dump_last >= 0 &&
            static_cast<std::size_t>(trace_dump_last) < records.size()) {
            begin = records.size() - static_cast<std::size_t>(trace_dump_last);
        }
        std::printf("\n--- decision traces (jsonl) ---\n");
        for (std::size_t i = begin; i < records.size(); ++i) {
            std::printf("%s\n", obs::to_jsonl(records[i]).c_str());
        }
    }
    return 0;
}
